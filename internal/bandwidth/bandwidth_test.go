package bandwidth

import (
	"math"
	"sort"
	"testing"

	"selest/internal/dist"
	"selest/internal/kernel"
	"selest/internal/xmath"
	"selest/internal/xrand"
)

func normalSamples(t testing.TB, n int, mu, sigma float64, seed uint64) []float64 {
	t.Helper()
	r := xrand.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormalMeanStd(mu, sigma)
	}
	return xs
}

func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

func TestOptimalBinWidthMinimisesAMISE(t *testing.T) {
	// The closed form must sit at the minimum of the AMISE curve.
	n, r1 := 2000, 0.05
	hOpt := OptimalBinWidth(n, r1)
	f := func(h float64) float64 { return AMISEHistogram(h, n, r1) }
	hGrid, _ := xmath.LogGridMin(f, hOpt/50, hOpt*50, 4001)
	if math.Abs(math.Log(hGrid/hOpt)) > 0.01 {
		t.Fatalf("closed-form h_EW %v vs grid minimum %v", hOpt, hGrid)
	}
}

func TestOptimalBandwidthMinimisesAMISE(t *testing.T) {
	n, r2 := 2000, 0.01
	k := kernel.Epanechnikov{}
	hOpt := OptimalBandwidth(n, k, r2)
	f := func(h float64) float64 { return AMISEKernel(h, n, k, r2) }
	hGrid, _ := xmath.LogGridMin(f, hOpt/50, hOpt*50, 4001)
	if math.Abs(math.Log(hGrid/hOpt)) > 0.01 {
		t.Fatalf("closed-form h_K %v vs grid minimum %v", hOpt, hGrid)
	}
}

func TestOptimalFormulasDegenerate(t *testing.T) {
	if !math.IsInf(OptimalBinWidth(100, 0), 1) {
		t.Fatal("zero roughness should give infinite width")
	}
	if !math.IsNaN(OptimalBinWidth(0, 1)) {
		t.Fatal("n=0 should give NaN")
	}
	if !math.IsInf(OptimalBandwidth(100, kernel.Epanechnikov{}, 0), 1) {
		t.Fatal("zero roughness should give infinite bandwidth")
	}
}

func TestNormalScaleBandwidthPaperConstant(t *testing.T) {
	// For the Epanechnikov kernel the paper states h ≈ 2.345·s·n^(−1/5).
	// Build a sample with known scale ~1 and check the constant emerges.
	samples := normalSamples(t, 2000, 0, 1, 1)
	h, err := NormalScaleBandwidth(samples, kernel.Epanechnikov{})
	if err != nil {
		t.Fatal(err)
	}
	want := 2.345 * math.Pow(2000, -0.2)
	if math.Abs(h-want)/want > 0.05 {
		t.Fatalf("normal scale bandwidth = %v, want ≈ %v (2.345·s·n^{-1/5})", h, want)
	}
}

func TestNormalScaleBinWidthPaperConstant(t *testing.T) {
	// h ≈ (24√π)^(1/3)·s·n^(−1/3) ≈ 3.4908·s·n^(−1/3).
	samples := normalSamples(t, 2000, 0, 1, 2)
	h, err := NormalScaleBinWidth(samples)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Cbrt(24*math.SqrtPi) * math.Pow(2000, -1.0/3.0)
	if math.Abs(h-want)/want > 0.05 {
		t.Fatalf("normal scale bin width = %v, want ≈ %v", h, want)
	}
}

func TestNormalScaleRulesNearOptimalOnNormalData(t *testing.T) {
	// On truly normal data the normal scale rule must land close to the
	// oracle optimum computed from the analytic functionals.
	sigma := 3.0
	samples := normalSamples(t, 2000, 0, sigma, 3)
	nrm := dist.NewNormal(0, sigma)

	hNS, err := NormalScaleBandwidth(samples, kernel.Epanechnikov{})
	if err != nil {
		t.Fatal(err)
	}
	hOpt := OptimalBandwidth(2000, kernel.Epanechnikov{}, dist.RoughnessSecond(nrm))
	if math.Abs(math.Log(hNS/hOpt)) > 0.15 {
		t.Fatalf("normal scale h %v far from analytic optimum %v", hNS, hOpt)
	}

	wNS, err := NormalScaleBinWidth(samples)
	if err != nil {
		t.Fatal(err)
	}
	wOpt := OptimalBinWidth(2000, dist.RoughnessFirst(nrm))
	if math.Abs(math.Log(wNS/wOpt)) > 0.15 {
		t.Fatalf("normal scale width %v far from analytic optimum %v", wNS, wOpt)
	}
}

func TestNormalScaleErrors(t *testing.T) {
	if _, err := NormalScaleBinWidth(nil); err == nil {
		t.Fatal("empty sample should error")
	}
	if _, err := NormalScaleBandwidth([]float64{5, 5, 5}, kernel.Epanechnikov{}); err == nil {
		t.Fatal("degenerate sample should error")
	}
}

func TestBinsForWidth(t *testing.T) {
	if got := BinsForWidth(10, 0, 100, 0); got != 10 {
		t.Fatalf("BinsForWidth = %d, want 10", got)
	}
	if got := BinsForWidth(3, 0, 10, 0); got != 4 { // ceil(10/3)
		t.Fatalf("BinsForWidth = %d, want 4", got)
	}
	if got := BinsForWidth(10, 0, 100, 5); got != 5 {
		t.Fatalf("cap: BinsForWidth = %d, want 5", got)
	}
	if got := BinsForWidth(math.Inf(1), 0, 100, 0); got != 1 {
		t.Fatalf("infinite width should give 1 bin, got %d", got)
	}
	if got := BinsForWidth(1, 5, 5, 0); got != 1 {
		t.Fatalf("empty domain should give 1 bin, got %d", got)
	}
}

func TestNormalScaleBins(t *testing.T) {
	samples := normalSamples(t, 2000, 50, 10, 4)
	k, err := NormalScaleBins(samples, 0, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	// width ≈ 3.49·10·2000^{-1/3} ≈ 2.77 → ~36 bins over a 100-wide domain.
	if k < 20 || k > 60 {
		t.Fatalf("normal scale bins = %d, expected a few dozen", k)
	}
}

func TestDPIBandwidthOnNormalData(t *testing.T) {
	// On normal data DPI must stay in the same ballpark as the normal
	// scale rule (both approximate the same optimum).
	samples := normalSamples(t, 2000, 500, 80, 5)
	hNS, err := NormalScaleBandwidth(samples, kernel.Epanechnikov{})
	if err != nil {
		t.Fatal(err)
	}
	hDPI, err := DPIBandwidth(samples, kernel.Epanechnikov{}, 2, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := hDPI / hNS; ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("DPI h %v wildly different from NS h %v", hDPI, hNS)
	}
}

func TestDPIBandwidthAdaptsToBimodal(t *testing.T) {
	// On a well-separated bimodal density the normal scale rule
	// oversmooths (it sees one wide blob); DPI must choose a smaller h.
	r := xrand.New(6)
	samples := make([]float64, 2000)
	for i := range samples {
		if i%2 == 0 {
			samples[i] = r.NormalMeanStd(200, 20)
		} else {
			samples[i] = r.NormalMeanStd(800, 20)
		}
	}
	hNS, err := NormalScaleBandwidth(samples, kernel.Epanechnikov{})
	if err != nil {
		t.Fatal(err)
	}
	hDPI, err := DPIBandwidth(samples, kernel.Epanechnikov{}, 2, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if hDPI >= hNS {
		t.Fatalf("DPI h %v should undercut oversmoothing NS h %v on bimodal data", hDPI, hNS)
	}
}

func TestDPIZeroStepsEqualsNormalScale(t *testing.T) {
	samples := normalSamples(t, 500, 0, 1, 7)
	hNS, _ := NormalScaleBandwidth(samples, kernel.Epanechnikov{})
	hDPI, err := DPIBandwidth(samples, kernel.Epanechnikov{}, 0, -5, 5)
	if err != nil {
		t.Fatal(err)
	}
	// DPI runs over the fit context's sorted copy, so its standard
	// deviation accumulates in sorted order and can differ from the
	// unsorted NormalScaleBandwidth by summation ulps — 1e-12 relative is
	// the fit-path engine's equivalence budget.
	if !xmath.AlmostEqual(hDPI, hNS, 1e-12) {
		t.Fatalf("0-step DPI %v != NS %v beyond 1e-12", hDPI, hNS)
	}
	hSorted, err := NormalScaleBandwidthSorted(sortedCopy(samples), kernel.Epanechnikov{})
	if err != nil {
		t.Fatal(err)
	}
	if hDPI != hSorted {
		t.Fatalf("0-step DPI %v != sorted NS %v (must be bit-identical)", hDPI, hSorted)
	}
}

func TestDPIBinWidth(t *testing.T) {
	samples := normalSamples(t, 2000, 500, 80, 8)
	w, err := DPIBinWidth(samples, 2, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	wNS, _ := NormalScaleBinWidth(samples)
	if ratio := w / wNS; ratio < 0.3 || ratio > 3 {
		t.Fatalf("DPI width %v wildly different from NS width %v", w, wNS)
	}
}

func TestDPIDomainValidation(t *testing.T) {
	samples := normalSamples(t, 100, 0, 1, 9)
	if _, err := DPIBandwidth(samples, kernel.Epanechnikov{}, 2, 5, 5); err == nil {
		t.Fatal("empty domain should error")
	}
	if _, err := DPIBinWidth(samples, 2, 5, -5); err == nil {
		t.Fatal("inverted domain should error")
	}
}

func TestLSCVSelectsReasonableBandwidth(t *testing.T) {
	samples := normalSamples(t, 400, 0, 1, 10)
	h, err := LSCVBandwidth(samples, kernel.Epanechnikov{}, 0.02, 5, 48)
	if err != nil {
		t.Fatal(err)
	}
	// The AMISE optimum for N(0,1), n=400, Epanechnikov:
	hOpt := OptimalBandwidth(400, kernel.Epanechnikov{}, dist.RoughnessSecond(dist.NewNormal(0, 1)))
	if math.Abs(math.Log(h/hOpt)) > 1.0 {
		t.Fatalf("LSCV h %v more than e× away from optimum %v", h, hOpt)
	}
	// Must not sit at a grid edge (that would mean the grid clipped it).
	if h <= 0.021 || h >= 4.9 {
		t.Fatalf("LSCV h %v at grid edge", h)
	}
}

func TestLSCVValidation(t *testing.T) {
	if _, err := LSCVBandwidth([]float64{1}, kernel.Epanechnikov{}, 0.1, 1, 8); err == nil {
		t.Fatal("single sample should error")
	}
	if _, err := LSCVBandwidth([]float64{1, 2}, kernel.Epanechnikov{}, 1, 0.5, 8); err == nil {
		t.Fatal("inverted grid should error")
	}
}

func TestEpanechnikovSelfConvolutionClosedForm(t *testing.T) {
	k := kernel.Epanechnikov{}
	for _, d := range []float64{0, 0.3, 1, 1.7, 1.99, 2, 3} {
		want := xmath.Simpson(func(t float64) float64 { return k.Eval(t) * k.Eval(t-d) }, d-1, 1, 2000)
		if d >= 2 {
			want = 0
		}
		got := kernelSelfConvolution(k, d)
		if !xmath.AlmostEqual(got, want, 1e-6) {
			t.Fatalf("(K*K)(%v) = %v, numeric %v", d, got, want)
		}
	}
	// Symmetry.
	if kernelSelfConvolution(k, -0.7) != kernelSelfConvolution(k, 0.7) {
		t.Fatal("self-convolution must be even")
	}
}

func TestOracle(t *testing.T) {
	// Known convex loss: minimum at h = 2.
	loss := func(h float64) float64 { return (math.Log(h) - math.Log(2)) * (math.Log(h) - math.Log(2)) }
	h, err := Oracle(loss, 0.01, 100, 2001)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Log(h/2)) > 0.02 {
		t.Fatalf("oracle found %v, want 2", h)
	}
	if _, err := Oracle(loss, -1, 1, 10); err == nil {
		t.Fatal("bad grid should error")
	}
	if _, err := Oracle(func(float64) float64 { return math.NaN() }, 0.1, 1, 10); err == nil {
		t.Fatal("NaN loss should error")
	}
}

func TestOracleBins(t *testing.T) {
	loss := func(k int) float64 { return math.Abs(float64(k) - 37) }
	k, err := OracleBins(loss, 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	// The multiplicative scan lands near, not exactly on, 37.
	if k < 25 || k > 50 {
		t.Fatalf("oracle bins = %d, want near 37", k)
	}
	if _, err := OracleBins(loss, 0, 10); err == nil {
		t.Fatal("kLo=0 should error")
	}
	if _, err := OracleBins(func(int) float64 { return math.Inf(1) }, 1, 10); err == nil {
		t.Fatal("infinite loss should error")
	}
}
