package bandwidth

// Closed-form bandwidth selectors: O(1) rules that replace the pilot-grid
// cascades of DPI and the grid search of LSCV with exact formulas, so the
// bandwidth step of an online refit costs microseconds instead of tens of
// milliseconds (the refit bench pins the ratio).
//
// Both rules follow the beta-kernel closed-form-selector construction
// (arXiv:2601.19553): normalize the sample to its hull [min, max], fit a
// Beta(α, β) reference density by the method of moments — two moments that
// are an O(1) read off the FitContext's prefix-moment index — and plug the
// reference's derivative roughness, available in closed form through Beta
// functions, into the optimal-bandwidth formula:
//
//   - BetaClosedForm targets the density (the AMISE of f̂):
//     b = (R(K) / (n·k₂²·R(f″_ref)))^(1/5), the classical plug-in with the
//     Beta reference replacing the pilot cascade.
//   - ExactMISECDF targets the CDF — the quantity a selectivity estimator
//     actually serves (arXiv:1606.06993): minimising the exact kernel-CDF
//     MISE expansion ∫F(1−F)/n − (h/n)·V₁ + ¼h⁴k₂²R(f′) gives
//     b = (V₁ / (n·k₂²·R(f′_ref)))^(1/3), where V₁ = 2∫uK(u)K̄(u)du = 9/35
//     for the Epanechnikov kernel.
//
// Both return an original-scale bandwidth h = b·span, uniform with every
// other rule, and both are Epanechnikov-specific (the constants R(K) = 3/5,
// k₂ = 1/5, V₁ = 9/35 are baked in — the only kernel the fast paths serve).
//
// The Beta shapes are clamped to [2.6, 1e6]: the lower bound keeps every
// roughness integral convergent (R(f″) needs α, β > 2.5), the upper bound
// keeps the log-space Beta-function evaluation far from overflow. Samples
// whose moment fit is degenerate (zero variance handled separately as an
// error; overdispersed or non-finite fits) fall back to the flattest
// admissible reference (α = β = 2.6), which over-smooths gracefully rather
// than failing.

import (
	"fmt"
	"math"
	"time"

	"selest/internal/faultinject"
	"selest/internal/kde"
	"selest/internal/telemetry"
)

// Beta-shape clamps: betaShapeMin keeps R(f″) = ∫f″² convergent
// (needs α, β > 2.5); betaShapeMax bounds the log-Gamma arguments.
const (
	betaShapeMin = 2.6
	betaShapeMax = 1e6
)

// epaV1 is V₁ = 2∫u·K(u)·K̄(u)du for the Epanechnikov kernel, the
// first-order variance-reduction constant of the kernel-CDF MISE.
const epaV1 = 9.0 / 35.0

// BetaClosedForm returns the closed-form beta-reference plug-in bandwidth
// for the Epanechnikov kernel. Unlike DPI there is no pilot estimation:
// the cost is one sort (skipped by the Context variant) plus O(1)
// arithmetic.
func BetaClosedForm(samples []float64) (float64, error) {
	defer ruleNanosBetaClosedForm.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.beta-closed-form"); err != nil {
		return 0, err
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("bandwidth: empty sample set")
	}
	ctx, err := kde.NewFitContext(samples)
	if err != nil {
		return 0, err
	}
	return betaClosedFormCtx(ctx)
}

// BetaClosedFormContext is BetaClosedForm over a pre-built fit context:
// the hull and both moments come off the context's prefix-moment index,
// so the selector itself is O(1) — no pass over the data at all.
func BetaClosedFormContext(ctx *kde.FitContext) (float64, error) {
	defer ruleNanosBetaClosedForm.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.beta-closed-form"); err != nil {
		return 0, err
	}
	return betaClosedFormCtx(ctx)
}

func betaClosedFormCtx(ctx *kde.FitContext) (float64, error) {
	if telemetry.Enabled() {
		fitKindClosedForm.Inc()
	}
	alpha, beta, span, err := betaReference(ctx)
	if err != nil {
		return 0, err
	}
	r2 := betaRoughnessSecond(alpha, beta)
	// b = (R(K)/(n·k₂²·R₂))^(1/5) with R(K) = 3/5, k₂ = 1/5 → 15/(n·R₂).
	b := math.Pow(15/(float64(ctx.SampleSize())*r2), 0.2)
	if b > 0.5 {
		b = 0.5 // the beta estimator clamps to span/2 anyway; stay in range
	}
	return b * span, nil
}

// ExactMISECDF returns the closed-form CDF-targeted bandwidth for the
// Epanechnikov kernel: the exact minimiser of the kernel-CDF MISE
// expansion under the beta reference.
func ExactMISECDF(samples []float64) (float64, error) {
	defer ruleNanosExactMISE.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.exact-mise"); err != nil {
		return 0, err
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("bandwidth: empty sample set")
	}
	ctx, err := kde.NewFitContext(samples)
	if err != nil {
		return 0, err
	}
	return exactMISECDFCtx(ctx)
}

// ExactMISECDFContext is ExactMISECDF over a pre-built fit context (see
// BetaClosedFormContext).
func ExactMISECDFContext(ctx *kde.FitContext) (float64, error) {
	defer ruleNanosExactMISE.ObserveSince(time.Now())
	if err := faultinject.Check("bandwidth.exact-mise"); err != nil {
		return 0, err
	}
	return exactMISECDFCtx(ctx)
}

func exactMISECDFCtx(ctx *kde.FitContext) (float64, error) {
	if telemetry.Enabled() {
		fitKindClosedForm.Inc()
	}
	alpha, beta, span, err := betaReference(ctx)
	if err != nil {
		return 0, err
	}
	r1 := betaRoughnessFirst(alpha, beta)
	// b = (V₁/(n·k₂²·R₁))^(1/3) with V₁ = 9/35, k₂ = 1/5 → 45/(7·n·R₁).
	b := math.Cbrt(epaV1 * 25 / (float64(ctx.SampleSize()) * r1))
	if b > 0.5 {
		b = 0.5
	}
	return b * span, nil
}

// betaReference fits the Beta(α, β) reference by the method of moments on
// the hull-normalized sample: with m_z = (mean−lo)/span and v_z = var/span²,
//
//	t = m_z(1−m_z)/v_z − 1,  α = m_z·t,  β = (1−m_z)·t,
//
// clamped to [betaShapeMin, betaShapeMax]. Degenerate samples (zero span
// or zero variance) are an error, matching the other rules' behaviour on
// constant data.
func betaReference(ctx *kde.FitContext) (alpha, beta, span float64, err error) {
	sorted := ctx.Sorted()
	n := len(sorted)
	if n == 0 {
		return 0, 0, 0, fmt.Errorf("bandwidth: empty sample set")
	}
	lo, hi := sorted[0], sorted[n-1]
	span = hi - lo
	if !(span > 0) || math.IsInf(span, 0) || math.IsNaN(span) {
		return 0, 0, 0, fmt.Errorf("bandwidth: degenerate sample (zero scale)")
	}
	mean, variance, ok := ctx.MomentSummary()
	if !ok || !(variance > 0) {
		return 0, 0, 0, fmt.Errorf("bandwidth: degenerate sample (zero scale)")
	}
	mz := (mean - lo) / span
	vz := variance / (span * span)
	t := mz*(1-mz)/vz - 1
	alpha = mz * t
	beta = (1 - mz) * t
	alpha = clampShape(alpha)
	beta = clampShape(beta)
	return alpha, beta, span, nil
}

func clampShape(a float64) float64 {
	if math.IsNaN(a) || a < betaShapeMin {
		return betaShapeMin
	}
	if a > betaShapeMax {
		return betaShapeMax
	}
	return a
}

// lbeta returns ln B(a, b) = lnΓ(a) + lnΓ(b) − lnΓ(a+b).
func lbeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// betaTerm evaluates coef · B(a, b) / B(α, β)² in log space, so the huge
// Beta-function magnitudes at shape 1e6 never overflow before the ratio.
func betaTerm(coef, a, b, lnB0 float64) float64 {
	if coef == 0 {
		return 0
	}
	v := math.Exp(math.Log(math.Abs(coef)) + lbeta(a, b) - 2*lnB0)
	if coef < 0 {
		return -v
	}
	return v
}

// betaRoughnessFirst returns R(f′) = ∫f′² for the Beta(α, β) density in
// closed form: with p = α−1, q = β−1,
//
//	f′ = f·(p/x − q/(1−x)), so B(α,β)²·R(f′) =
//	p²·B(2p−1, 2q+1) − 2pq·B(2p, 2q) + q²·B(2p+1, 2q−1).
//
// Convergence needs α, β > 1.5; the shape clamp guarantees it.
func betaRoughnessFirst(alpha, beta float64) float64 {
	p, q := alpha-1, beta-1
	lnB0 := lbeta(alpha, beta)
	return betaTerm(p*p, 2*p-1, 2*q+1, lnB0) +
		betaTerm(-2*p*q, 2*p, 2*q, lnB0) +
		betaTerm(q*q, 2*p+1, 2*q-1, lnB0)
}

// betaRoughnessSecond returns R(f″) = ∫f″² for the Beta(α, β) density in
// closed form: with p = α−1, q = β−1, A = p(p−1), B = −2pq, C = q(q−1),
//
//	f″ = f·(A/x² + B/(x(1−x)) + C/(1−x)²), so B(α,β)²·R(f″) =
//	A²·B(2p−3, 2q+1) + B²·B(2p−1, 2q−1) + C²·B(2p+1, 2q−3)
//	+ 2AB·B(2p−2, 2q) + 2AC·B(2p−1, 2q−1) + 2BC·B(2p, 2q−2).
//
// Convergence needs α, β > 2.5; the shape clamp guarantees it.
// Verification pin: Beta(3, 3) gives exactly 720 (closedform_test.go).
func betaRoughnessSecond(alpha, beta float64) float64 {
	p, q := alpha-1, beta-1
	a2, b2, c2 := p*(p-1), -2*p*q, q*(q-1)
	lnB0 := lbeta(alpha, beta)
	return betaTerm(a2*a2, 2*p-3, 2*q+1, lnB0) +
		betaTerm(b2*b2, 2*p-1, 2*q-1, lnB0) +
		betaTerm(c2*c2, 2*p+1, 2*q-3, lnB0) +
		betaTerm(2*a2*b2, 2*p-2, 2*q, lnB0) +
		betaTerm(2*a2*c2, 2*p-1, 2*q-1, lnB0) +
		betaTerm(2*b2*c2, 2*p, 2*q-2, lnB0)
}
