package sample

import (
	"math"
	"testing"
	"testing/quick"

	"selest/internal/xrand"
)

func TestWithoutReplacementValidation(t *testing.T) {
	r := xrand.New(1)
	if _, err := WithoutReplacement(r, []float64{1, 2}, 3); err == nil {
		t.Fatal("oversized sample should error")
	}
	if _, err := WithoutReplacement(r, []float64{1, 2}, -1); err == nil {
		t.Fatal("negative sample size should error")
	}
	s, err := WithoutReplacement(r, []float64{1, 2}, 0)
	if err != nil || len(s) != 0 {
		t.Fatalf("empty sample: %v, %v", s, err)
	}
}

func TestWithoutReplacementNoDuplicates(t *testing.T) {
	r := xrand.New(2)
	pop := make([]float64, 1000)
	for i := range pop {
		pop[i] = float64(i) // all distinct
	}
	s, err := WithoutReplacement(r, pop, 500)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[float64]bool, len(s))
	for _, v := range s {
		if seen[v] {
			t.Fatalf("duplicate sample value %v", v)
		}
		seen[v] = true
	}
}

func TestWithoutReplacementDoesNotMutate(t *testing.T) {
	r := xrand.New(3)
	pop := []float64{9, 8, 7, 6, 5}
	want := append([]float64(nil), pop...)
	if _, err := WithoutReplacement(r, pop, 3); err != nil {
		t.Fatal(err)
	}
	for i := range pop {
		if pop[i] != want[i] {
			t.Fatal("population mutated")
		}
	}
}

func TestWithoutReplacementUniformity(t *testing.T) {
	// Each of 10 population elements should appear in a size-5 sample with
	// probability 1/2.
	r := xrand.New(4)
	pop := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	counts := make([]int, 10)
	const trials = 20000
	for trial := 0; trial < trials; trial++ {
		s, err := WithoutReplacement(r, pop, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range s {
			counts[int(v)]++
		}
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-0.5) > 0.02 {
			t.Fatalf("element %d sampled with frequency %v, want ~0.5", i, frac)
		}
	}
}

func TestReservoirFillsToCapacity(t *testing.T) {
	rv := NewReservoir(xrand.New(5), 10)
	for i := 0; i < 5; i++ {
		rv.Add(float64(i))
	}
	if rv.Len() != 5 || rv.Seen() != 5 {
		t.Fatalf("Len/Seen = %d/%d", rv.Len(), rv.Seen())
	}
	for i := 5; i < 100; i++ {
		rv.Add(float64(i))
	}
	if rv.Len() != 10 || rv.Seen() != 100 {
		t.Fatalf("after stream: Len/Seen = %d/%d", rv.Len(), rv.Seen())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Stream 0..99 through capacity-10 reservoirs; every element should be
	// retained with probability ~0.1.
	r := xrand.New(6)
	counts := make([]int, 100)
	const trials = 20000
	for trial := 0; trial < trials; trial++ {
		rv := NewReservoir(r, 10)
		for i := 0; i < 100; i++ {
			rv.Add(float64(i))
		}
		for _, v := range rv.Sample() {
			counts[int(v)]++
		}
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-0.1) > 0.015 {
			t.Fatalf("element %d retained with frequency %v, want ~0.1", i, frac)
		}
	}
}

func TestReservoirSampleIsCopy(t *testing.T) {
	rv := NewReservoir(xrand.New(7), 3)
	rv.Add(1)
	s := rv.Sample()
	s[0] = 99
	if rv.Sample()[0] == 99 {
		t.Fatal("Sample must return a copy")
	}
}

func TestReservoirPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 should panic")
		}
	}()
	NewReservoir(xrand.New(1), 0)
}

func TestPureEstimator(t *testing.T) {
	p := NewPureEstimator([]float64{1, 2, 2, 3, 5})
	cases := []struct {
		a, b, want float64
	}{
		{2, 2, 0.4},
		{1, 5, 1},
		{0, 0.5, 0},
		{4, 1, 0}, // inverted
		{2.5, 4.9, 0.2},
	}
	for _, tc := range cases {
		if got := p.Selectivity(tc.a, tc.b); got != tc.want {
			t.Errorf("Selectivity(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	if p.SampleSize() != 5 {
		t.Fatalf("SampleSize = %d", p.SampleSize())
	}
	if p.Name() != "sampling" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestPureEstimatorEmpty(t *testing.T) {
	p := NewPureEstimator(nil)
	if p.Selectivity(0, 1) != 0 {
		t.Fatal("empty estimator should return 0")
	}
}

func TestPureEstimatorConverges(t *testing.T) {
	// Consistency: error shrinks as the sample grows (paper §2).
	r := xrand.New(8)
	pop := make([]float64, 100000)
	for i := range pop {
		pop[i] = r.Float64()
	}
	trueSel := 0.0
	for _, v := range pop {
		if v >= 0.3 && v <= 0.4 {
			trueSel++
		}
	}
	trueSel /= float64(len(pop))

	errAt := func(n int) float64 {
		s, err := WithoutReplacement(r, pop, n)
		if err != nil {
			t.Fatal(err)
		}
		// Average over several draws to smooth sampling noise.
		total := 0.0
		const reps = 30
		for rep := 0; rep < reps; rep++ {
			s, _ = WithoutReplacement(r, pop, n)
			total += math.Abs(NewPureEstimator(s).Selectivity(0.3, 0.4) - trueSel)
		}
		return total / reps
	}
	small, large := errAt(100), errAt(10000)
	if large >= small {
		t.Fatalf("error did not shrink with sample size: n=100 err=%v, n=10000 err=%v", small, large)
	}
}

// Property: pure-sampling selectivity is within [0,1] and additive over a
// partition of the range.
func TestQuickPureEstimatorBounds(t *testing.T) {
	r := xrand.New(9)
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = r.Normal()
	}
	p := NewPureEstimator(samples)
	prop := func(seed uint8) bool {
		a := float64(seed)/32 - 4
		b := a + 1.3
		m := a + 0.4
		whole := p.Selectivity(a, b)
		parts := p.Selectivity(a, m) + p.Selectivity(math.Nextafter(m, math.Inf(1)), b)
		return whole >= 0 && whole <= 1 && math.Abs(whole-parts) < 1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
