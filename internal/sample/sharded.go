package sample

import (
	"sync"
	"sync/atomic"

	"selest/internal/xrand"
)

// ShardedReservoir is a reservoir sample whose ingest path is striped
// across independently locked shards, so concurrent writers stop
// serializing on one mutex. Each shard owns a plain Reservoir over a
// deterministic 1-in-S slice of the stream: an atomic round-robin cursor
// assigns element k to shard k mod S, so after N inserts shard i has seen
// ceil((N−i)/S) elements and every shard's reservoir is a uniform sample
// of its slice. The union of per-shard uniform samples over an
// equal-share partition of the stream is a uniform sample of the whole
// stream (up to the ±1 element the round-robin remainder leaves between
// shards), which is the same guarantee the single reservoir gives.
//
// Shard capacities follow the same remainder order as the cursor
// (shard i holds ceil((K−i)/S) of the K total slots), so the merged
// sample reaches exactly K elements on the K-th insert and no shard
// evicts while the reservoir is still filling — preserving the
// "first refit when the reservoir fills" trigger of the online
// estimator bit-for-bit.
//
// With one shard the ingest order, RNG consumption, and therefore the
// exact sampled contents match a plain NewReservoir(xrand.New(seed), K)
// stream for stream, so existing seeded behaviour is unchanged at S = 1.
type ShardedReservoir struct {
	shards []reservoirShard
	cursor atomic.Uint64 // round-robin assignment of inserts to shards
	seen   atomic.Int64
	held   atomic.Int64 // total elements currently resident across shards
}

// reservoirShard pads each shard onto its own cache lines so neighbouring
// shard locks don't false-share under parallel ingest.
type reservoirShard struct {
	mu  sync.Mutex
	res *Reservoir
	_   [64 - 8]byte
}

// NewSharded returns a reservoir of total capacity split over the given
// number of shards. shards < 1 is treated as 1; shards is capped at
// capacity so every shard holds at least one slot. It panics on
// capacity <= 0 (matching NewReservoir). Shard i's RNG is seeded from
// seed + i via splitmix64, so nearby shard seeds yield uncorrelated
// streams and S = 1 reproduces the unsharded seeding exactly.
func NewSharded(seed uint64, capacity, shards int) *ShardedReservoir {
	if capacity <= 0 {
		panic("sample: reservoir capacity must be positive")
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	s := &ShardedReservoir{shards: make([]reservoirShard, shards)}
	for i := range s.shards {
		// ceil((capacity − i)/shards): the first (capacity mod shards)
		// shards take the remainder slots, in cursor order.
		c := (capacity - i + shards - 1) / shards
		s.shards[i].res = NewReservoir(xrand.New(seed+uint64(i)), c)
	}
	return s
}

// Add offers one stream element, reporting whether it was kept and
// whether keeping it evicted a resident element. Only the chosen shard's
// lock is taken, so inserts to different shards proceed in parallel.
func (s *ShardedReservoir) Add(x float64) (kept, evicted bool) {
	sh := &s.shards[(s.cursor.Add(1)-1)%uint64(len(s.shards))]
	sh.mu.Lock()
	wasFull := sh.res.Len() == sh.res.capacity
	kept = sh.res.Add(x)
	sh.mu.Unlock()
	s.seen.Add(1)
	if kept && !wasFull {
		s.held.Add(1)
	}
	return kept, kept && wasFull
}

// Snapshot returns a copy of the merged reservoir contents, shard by
// shard. Each shard is locked only for its own copy, so a snapshot stalls
// any one writer for at most one shard's memcpy — this is the only point
// where the refit path touches the ingest locks.
func (s *ShardedReservoir) Snapshot() []float64 {
	out := make([]float64, 0, s.held.Load()+int64(len(s.shards)))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out = sh.res.AppendTo(out)
		sh.mu.Unlock()
	}
	return out
}

// Len returns how many elements are currently resident across all shards.
func (s *ShardedReservoir) Len() int { return int(s.held.Load()) }

// Seen returns how many elements have been offered.
func (s *ShardedReservoir) Seen() int { return int(s.seen.Load()) }

// Shards returns the stripe count.
func (s *ShardedReservoir) Shards() int { return len(s.shards) }

// Capacity returns the total slot count across shards.
func (s *ShardedReservoir) Capacity() int {
	total := 0
	for i := range s.shards {
		total += s.shards[i].res.capacity
	}
	return total
}

// Reset drops all contents and counts, as Reservoir.Reset does. It locks
// shards one at a time, so it may interleave with concurrent Adds; the
// counters are reset last so Len never reads higher than reality.
func (s *ShardedReservoir) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.res.Reset()
		sh.mu.Unlock()
	}
	s.seen.Store(0)
	s.held.Store(0)
	s.cursor.Store(0)
}
