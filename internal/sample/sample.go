// Package sample implements the sampling substrate: simple random sampling
// without replacement (how the paper draws its 2,000-record sample sets),
// reservoir sampling for the streaming extension, and the pure-sampling
// selectivity estimator that serves as the paper's baseline.
package sample

import (
	"fmt"
	"math"
	"sort"

	"selest/internal/fsort"
	"selest/internal/xrand"
)

// WithoutReplacement draws n records from values uniformly without
// replacement, matching the paper's sample-set construction ("selecting the
// records from the file in a random fashion without replacement"). The
// input is not modified. n greater than len(values) is an error.
func WithoutReplacement(r *xrand.RNG, values []float64, n int) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("sample: negative sample size %d", n)
	}
	if n > len(values) {
		return nil, fmt.Errorf("sample: sample size %d exceeds population %d", n, len(values))
	}
	// Partial Fisher–Yates over an index permutation: O(len) space,
	// O(n) swaps, and every subset is equally likely.
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		j := i + r.Intn(len(values)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = values[idx[i]]
	}
	return out, nil
}

// Reservoir maintains a uniform sample of fixed capacity over a stream of
// unknown length (Vitter's algorithm R). It supports the online-estimation
// extension: estimators are re-fit from the reservoir as records stream in.
type Reservoir struct {
	rng      *xrand.RNG
	capacity int
	seen     int
	items    []float64
}

// NewReservoir returns a reservoir holding at most capacity items.
// It panics on capacity <= 0.
func NewReservoir(r *xrand.RNG, capacity int) *Reservoir {
	if capacity <= 0 {
		panic("sample: reservoir capacity must be positive")
	}
	return &Reservoir{rng: r, capacity: capacity, items: make([]float64, 0, capacity)}
}

// Add offers one stream element to the reservoir. It reports whether
// the element was kept — appended while filling, or admitted by
// evicting a resident element once full — so callers can track
// reservoir churn without re-reading the contents.
func (rv *Reservoir) Add(x float64) bool {
	rv.seen++
	if len(rv.items) < rv.capacity {
		rv.items = append(rv.items, x)
		return true
	}
	if j := rv.rng.Intn(rv.seen); j < rv.capacity {
		rv.items[j] = x
		return true
	}
	return false
}

// Snapshot returns a copy of the current reservoir contents. The copy is
// independent of the reservoir: later Adds never show through it, so
// callers (the online refit path, drift checks) can hand it to a builder
// that runs while the reservoir keeps absorbing the stream.
func (rv *Reservoir) Snapshot() []float64 {
	return append([]float64(nil), rv.items...)
}

// AppendTo appends the current reservoir contents to dst and returns the
// extended slice — Snapshot without the forced allocation, for callers
// merging several reservoirs into one buffer.
func (rv *Reservoir) AppendTo(dst []float64) []float64 {
	return append(dst, rv.items...)
}

// Sample returns a copy of the current reservoir contents.
//
// Deprecated: Sample is Snapshot under its pre-serving-engine name; new
// code should call Snapshot.
func (rv *Reservoir) Sample() []float64 {
	return rv.Snapshot()
}

// Clone returns a deep copy of the reservoir — contents, seen count, and
// RNG state — so the copy evolves exactly as the original would from this
// point, without sharing any mutable state.
func (rv *Reservoir) Clone() *Reservoir {
	rng := *rv.rng
	return &Reservoir{
		rng:      &rng,
		capacity: rv.capacity,
		seen:     rv.seen,
		items:    append(make([]float64, 0, rv.capacity), rv.items...),
	}
}

// Seen returns how many elements have been offered.
func (rv *Reservoir) Seen() int { return rv.seen }

// Reset drops the reservoir contents and the seen count, so subsequent
// Adds rebuild a uniform sample of the post-reset stream only.
func (rv *Reservoir) Reset() {
	rv.seen = 0
	rv.items = rv.items[:0]
}

// Len returns how many elements the reservoir currently holds.
func (rv *Reservoir) Len() int { return len(rv.items) }

// PureEstimator estimates range selectivity as the fraction of samples
// falling inside the range. This is the paper's baseline: consistent, but
// converging only at rate O(n^{−1/2}).
type PureEstimator struct {
	sorted []float64
}

// NewPureEstimator builds the estimator from a sample set (copied, sorted).
func NewPureEstimator(samples []float64) *PureEstimator {
	s := append([]float64(nil), samples...)
	fsort.Float64s(s)
	return &PureEstimator{sorted: s}
}

// Selectivity returns the estimated selectivity σ̂(a,b) ∈ [0,1].
func (p *PureEstimator) Selectivity(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) || b < a || len(p.sorted) == 0 {
		return 0
	}
	lo := sort.SearchFloat64s(p.sorted, a)
	hi := sort.Search(len(p.sorted), func(i int) bool { return p.sorted[i] > b })
	return float64(hi-lo) / float64(len(p.sorted))
}

// SampleSize returns the number of samples backing the estimator.
func (p *PureEstimator) SampleSize() int { return len(p.sorted) }

// Name identifies the estimator in experiment output.
func (p *PureEstimator) Name() string { return "sampling" }
