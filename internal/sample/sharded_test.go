package sample

import (
	"math"
	"sync"
	"testing"

	"selest/internal/xrand"
)

// TestSnapshotIsolation pins the contract the off-lock refit path depends
// on: mutating the reservoir after Snapshot must not show through the
// returned slice, and mutating the slice must not corrupt the reservoir.
func TestSnapshotIsolation(t *testing.T) {
	rv := NewReservoir(xrand.New(1), 8)
	for i := 0; i < 8; i++ {
		rv.Add(float64(i))
	}
	snap := rv.Snapshot()
	want := append([]float64(nil), snap...)
	for i := 0; i < 1000; i++ {
		rv.Add(1e9 + float64(i))
	}
	for i := range snap {
		if snap[i] != want[i] {
			t.Fatalf("snapshot[%d] changed after reservoir mutation: %v -> %v", i, want[i], snap[i])
		}
	}
	snap[0] = -1
	for _, v := range rv.Snapshot() {
		if v == -1 {
			t.Fatal("mutating the snapshot leaked into the reservoir")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	rv := NewReservoir(xrand.New(2), 16)
	for i := 0; i < 100; i++ {
		rv.Add(float64(i))
	}
	cl := rv.Clone()
	if cl.Seen() != rv.Seen() || cl.Len() != rv.Len() {
		t.Fatalf("clone counts differ: seen %d/%d len %d/%d", cl.Seen(), rv.Seen(), cl.Len(), rv.Len())
	}
	// Same RNG state: fed identical streams, both evolve identically.
	for i := 100; i < 500; i++ {
		rv.Add(float64(i))
		cl.Add(float64(i))
	}
	a, b := rv.Snapshot(), cl.Snapshot()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clone diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Mutating one does not touch the other.
	rv.Reset()
	if cl.Len() == 0 {
		t.Fatal("resetting the original drained the clone")
	}
}

// TestShardedFillsExactlyAtCapacity pins the trigger property the online
// estimator's first refit relies on: the merged length reaches capacity
// exactly on the capacity-th insert, with no shard evicting early.
func TestShardedFillsExactlyAtCapacity(t *testing.T) {
	for _, tc := range []struct{ capacity, shards int }{
		{100, 1}, {100, 8}, {97, 8}, {64, 7}, {2000, 16}, {5, 8},
	} {
		s := NewSharded(1, tc.capacity, tc.shards)
		for i := 0; i < tc.capacity-1; i++ {
			if _, evicted := s.Add(float64(i)); evicted {
				t.Fatalf("cap %d shards %d: eviction at insert %d while filling", tc.capacity, tc.shards, i)
			}
		}
		if s.Len() != tc.capacity-1 {
			t.Fatalf("cap %d shards %d: Len = %d before last fill insert", tc.capacity, tc.shards, s.Len())
		}
		s.Add(float64(tc.capacity))
		if s.Len() != tc.capacity {
			t.Fatalf("cap %d shards %d: Len = %d at capacity", tc.capacity, tc.shards, s.Len())
		}
		if s.Capacity() != tc.capacity {
			t.Fatalf("cap %d shards %d: Capacity = %d", tc.capacity, tc.shards, s.Capacity())
		}
		// Once full, Len stays pinned at capacity.
		for i := 0; i < 3*tc.capacity; i++ {
			s.Add(float64(i))
		}
		if s.Len() != tc.capacity {
			t.Fatalf("cap %d shards %d: Len = %d after overflow", tc.capacity, tc.shards, s.Len())
		}
		if s.Seen() != 4*tc.capacity {
			t.Fatalf("cap %d shards %d: Seen = %d", tc.capacity, tc.shards, s.Seen())
		}
	}
}

// TestShardedOneShardMatchesReservoir pins that S = 1 consumes the RNG in
// the same order as the plain reservoir, so seeded online streams sample
// identically before and after the sharded ingest path landed.
func TestShardedOneShardMatchesReservoir(t *testing.T) {
	const seed, capacity, n = 7, 50, 5000
	plain := NewReservoir(xrand.New(seed), capacity)
	sharded := NewSharded(seed, capacity, 1)
	r := xrand.New(99)
	for i := 0; i < n; i++ {
		v := r.Float64()
		plain.Add(v)
		sharded.Add(v)
	}
	a, b := plain.Snapshot(), sharded.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("contents diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestShardedUniformity feeds a long 0..1 stream and checks the merged
// sample's mean stays near 1/2 — a smoke test that striping does not bias
// the sample toward any stream region.
func TestShardedUniformity(t *testing.T) {
	s := NewSharded(3, 2000, 8)
	r := xrand.New(4)
	for i := 0; i < 200000; i++ {
		s.Add(r.Float64())
	}
	snap := s.Snapshot()
	if len(snap) != 2000 {
		t.Fatalf("merged snapshot has %d elements", len(snap))
	}
	sum := 0.0
	for _, v := range snap {
		sum += v
	}
	if mean := sum / float64(len(snap)); math.Abs(mean-0.5) > 0.03 {
		t.Fatalf("merged sample mean %v, want ~0.5", mean)
	}
}

// TestShardedConcurrentAdds hammers Add and Snapshot from many goroutines
// under the race detector and checks the counters add up.
func TestShardedConcurrentAdds(t *testing.T) {
	const writers, perWriter = 8, 5000
	s := NewSharded(5, 512, 8)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := xrand.New(uint64(w))
			for i := 0; i < perWriter; i++ {
				s.Add(r.Float64())
				if i%1024 == 0 {
					if got := len(s.Snapshot()); got > 512 {
						panic("snapshot larger than capacity")
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Seen() != writers*perWriter {
		t.Fatalf("Seen = %d, want %d", s.Seen(), writers*perWriter)
	}
	if s.Len() != 512 {
		t.Fatalf("Len = %d, want full", s.Len())
	}
	if got := len(s.Snapshot()); got != 512 {
		t.Fatalf("merged snapshot %d elements", got)
	}
	s.Reset()
	if s.Len() != 0 || s.Seen() != 0 || len(s.Snapshot()) != 0 {
		t.Fatal("reset did not drain the sharded reservoir")
	}
}
