// Package experiments contains one driver per figure and table of the
// paper's evaluation (§5). Each driver regenerates the corresponding data
// series from scratch — data files, sample sets, query workloads,
// estimators — and returns a structured Report that renders as text.
// DESIGN.md §3 maps every driver to the figure it reproduces and states
// the shape that must hold.
package experiments

import (
	"fmt"
	"sync"

	"selest/internal/core"
	"selest/internal/dataset"
	"selest/internal/query"
	"selest/internal/sample"
	"selest/internal/xrand"
)

// Config parameterises an experiment environment.
type Config struct {
	// Seed drives every random choice; the default reproduces the
	// committed EXPERIMENTS.md numbers.
	Seed uint64
	// SampleSize is the estimator sample-set size (paper: 2,000).
	SampleSize int
	// QueryCount is the number of queries per workload (paper: 1,000).
	QueryCount int
	// Methods, when non-empty, restricts the method-sweep drivers
	// (ext-all) to this subset instead of every implemented method.
	Methods []core.Method
}

func (c *Config) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = dataset.DefaultSeed
	}
	if c.SampleSize == 0 {
		c.SampleSize = 2000
	}
	if c.QueryCount == 0 {
		c.QueryCount = 1000
	}
}

// Env caches data files, sample sets and query workloads across drivers so
// a full run generates each file once. Env is safe for concurrent use.
type Env struct {
	cfg Config

	mu        sync.Mutex
	files     map[string]*dataset.File
	samples   map[sampleKey][]float64
	workloads map[workloadKey]*query.Workload
}

type sampleKey struct {
	file string
	n    int
}

type workloadKey struct {
	file string
	size float64
}

// NewEnv returns an environment with the given configuration.
func NewEnv(cfg Config) *Env {
	cfg.applyDefaults()
	return &Env{
		cfg:       cfg,
		files:     make(map[string]*dataset.File),
		samples:   make(map[sampleKey][]float64),
		workloads: make(map[workloadKey]*query.Workload),
	}
}

// Config returns the environment configuration (defaults applied).
func (e *Env) Config() Config { return e.cfg }

// Methods returns the method set the sweep drivers compare: the
// configured subset when one was given, every implemented method
// otherwise.
func (e *Env) Methods() []core.Method {
	if len(e.cfg.Methods) > 0 {
		return append([]core.Method(nil), e.cfg.Methods...)
	}
	return core.Methods()
}

// File returns the named catalog data file, generating it on first use.
func (e *Env) File(name string) (*dataset.File, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if f, ok := e.files[name]; ok {
		return f, nil
	}
	f, err := dataset.ByName(name, e.cfg.Seed)
	if err != nil {
		return nil, err
	}
	e.files[name] = f
	return f, nil
}

// Sample returns a deterministic size-n random sample (without
// replacement) of the named file.
func (e *Env) Sample(name string, n int) ([]float64, error) {
	f, err := e.File(name)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	key := sampleKey{file: name, n: n}
	if s, ok := e.samples[key]; ok {
		return s, nil
	}
	r := xrand.New(e.cfg.Seed ^ hashName(name) ^ uint64(n)*0x9e3779b97f4a7c15)
	s, err := sample.WithoutReplacement(r, f.Records, n)
	if err != nil {
		return nil, fmt.Errorf("experiments: sampling %s: %w", name, err)
	}
	e.samples[key] = s
	return s, nil
}

// DefaultSample returns the configured-size sample of the named file.
func (e *Env) DefaultSample(name string) ([]float64, error) {
	return e.Sample(name, e.cfg.SampleSize)
}

// Workload returns the deterministic query workload of the given size
// fraction for the named file, with exact ground truth.
func (e *Env) Workload(name string, size float64) (*query.Workload, error) {
	f, err := e.File(name)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	key := workloadKey{file: name, size: size}
	if w, ok := e.workloads[key]; ok {
		return w, nil
	}
	lo, hi := f.Domain()
	r := xrand.New(e.cfg.Seed ^ hashName(name) ^ uint64(size*1e6))
	// Catalog files live on integer domains, so queries are
	// integer-aligned exactly as the paper's query files are.
	w, err := query.GenerateAligned(f.Records, lo, hi, size, e.cfg.QueryCount, r, true)
	if err != nil {
		return nil, fmt.Errorf("experiments: workload %s/%v: %w", name, size, err)
	}
	e.workloads[key] = w
	return w, nil
}

// hashName is a tiny FNV-1a over the file name, decorrelating per-file
// RNG streams.
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// PromisingFiles is the file set of the per-file comparison figures
// (8, 9, 11, 12): all synthetic large-domain files plus the real-data
// stand-ins, matching the files the paper reports.
func PromisingFiles() []string {
	return []string{"u(20)", "n(20)", "e(20)", "arap1", "arap2", "rr1(22)", "rr2(22)", "iw"}
}
