// Package experiments contains one driver per figure and table of the
// paper's evaluation (§5). Each driver regenerates the corresponding data
// series from scratch — data files, sample sets, query workloads,
// estimators — and returns a structured Report that renders as text.
// DESIGN.md §3 maps every driver to the figure it reproduces and states
// the shape that must hold.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"selest/internal/core"
	"selest/internal/dataset"
	"selest/internal/query"
	"selest/internal/sample"
	"selest/internal/xrand"
)

// Config parameterises an experiment environment.
type Config struct {
	// Seed drives every random choice; the default reproduces the
	// committed EXPERIMENTS.md numbers.
	Seed uint64
	// SampleSize is the estimator sample-set size (paper: 2,000).
	SampleSize int
	// QueryCount is the number of queries per workload (paper: 1,000).
	QueryCount int
	// Methods, when non-empty, restricts the method-sweep drivers
	// (ext-all) to this subset instead of every implemented method.
	Methods []core.Method
	// Parallel is the worker count for drivers and for the per-file /
	// per-method cells inside them. 0 means GOMAXPROCS; 1 forces fully
	// sequential execution. Reports are identical at every setting.
	Parallel int
}

func (c *Config) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = dataset.DefaultSeed
	}
	if c.SampleSize == 0 {
		c.SampleSize = 2000
	}
	if c.QueryCount == 0 {
		c.QueryCount = 1000
	}
}

// Env caches data files, sample sets and query workloads across drivers so
// a full run generates each file once. Env is safe for concurrent use:
// each cache entry carries its own sync.Once, so two workers asking for
// the same file wait on one generation while requests for different keys
// generate concurrently (the map mutex is held only for lookup/insert).
type Env struct {
	cfg Config

	mu        sync.Mutex
	files     map[string]*fileEntry
	samples   map[sampleKey]*sampleEntry
	workloads map[workloadKey]*workloadEntry
}

type fileEntry struct {
	once sync.Once
	f    *dataset.File
	err  error
}

type sampleEntry struct {
	once sync.Once
	s    []float64
	err  error
}

type workloadEntry struct {
	once sync.Once
	w    *query.Workload
	err  error
}

type sampleKey struct {
	file string
	n    int
}

type workloadKey struct {
	file string
	size float64
}

// NewEnv returns an environment with the given configuration.
func NewEnv(cfg Config) *Env {
	cfg.applyDefaults()
	return &Env{
		cfg:       cfg,
		files:     make(map[string]*fileEntry),
		samples:   make(map[sampleKey]*sampleEntry),
		workloads: make(map[workloadKey]*workloadEntry),
	}
}

// Config returns the environment configuration (defaults applied).
func (e *Env) Config() Config { return e.cfg }

// workers resolves the configured parallelism to an actual worker count.
func (e *Env) workers() int {
	if e.cfg.Parallel > 0 {
		return e.cfg.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Methods returns the method set the sweep drivers compare: the
// configured subset when one was given, every implemented method
// otherwise.
func (e *Env) Methods() []core.Method {
	if len(e.cfg.Methods) > 0 {
		return append([]core.Method(nil), e.cfg.Methods...)
	}
	return core.Methods()
}

// File returns the named catalog data file, generating it on first use.
func (e *Env) File(name string) (*dataset.File, error) {
	e.mu.Lock()
	ent, ok := e.files[name]
	if !ok {
		ent = &fileEntry{}
		e.files[name] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		ent.f, ent.err = dataset.ByName(name, e.cfg.Seed)
	})
	return ent.f, ent.err
}

// Sample returns a deterministic size-n random sample (without
// replacement) of the named file.
func (e *Env) Sample(name string, n int) ([]float64, error) {
	key := sampleKey{file: name, n: n}
	e.mu.Lock()
	ent, ok := e.samples[key]
	if !ok {
		ent = &sampleEntry{}
		e.samples[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		f, err := e.File(name)
		if err != nil {
			ent.err = err
			return
		}
		r := xrand.New(e.cfg.Seed ^ hashName(name) ^ uint64(n)*0x9e3779b97f4a7c15)
		s, err := sample.WithoutReplacement(r, f.Records, n)
		if err != nil {
			ent.err = fmt.Errorf("experiments: sampling %s: %w", name, err)
			return
		}
		ent.s = s
	})
	return ent.s, ent.err
}

// DefaultSample returns the configured-size sample of the named file.
func (e *Env) DefaultSample(name string) ([]float64, error) {
	return e.Sample(name, e.cfg.SampleSize)
}

// Workload returns the deterministic query workload of the given size
// fraction for the named file, with exact ground truth.
func (e *Env) Workload(name string, size float64) (*query.Workload, error) {
	key := workloadKey{file: name, size: size}
	e.mu.Lock()
	ent, ok := e.workloads[key]
	if !ok {
		ent = &workloadEntry{}
		e.workloads[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		f, err := e.File(name)
		if err != nil {
			ent.err = err
			return
		}
		lo, hi := f.Domain()
		r := xrand.New(e.cfg.Seed ^ hashName(name) ^ uint64(size*1e6))
		// Catalog files live on integer domains, so queries are
		// integer-aligned exactly as the paper's query files are.
		w, err := query.GenerateAligned(f.Records, lo, hi, size, e.cfg.QueryCount, r, true)
		if err != nil {
			ent.err = fmt.Errorf("experiments: workload %s/%v: %w", name, size, err)
			return
		}
		ent.w = w
	})
	return ent.w, ent.err
}

// hashName is a tiny FNV-1a over the file name, decorrelating per-file
// RNG streams.
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// PromisingFiles is the file set of the per-file comparison figures
// (8, 9, 11, 12): all synthetic large-domain files plus the real-data
// stand-ins, matching the files the paper reports.
func PromisingFiles() []string {
	return []string{"u(20)", "n(20)", "e(20)", "arap1", "arap2", "rr1(22)", "rr2(22)", "iw"}
}
