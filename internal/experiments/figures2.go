package experiments

import (
	"fmt"
	"math"

	"selest/internal/bandwidth"
	"selest/internal/core"
	"selest/internal/errmetrics"
	"selest/internal/histogram"
	"selest/internal/hybrid"
	"selest/internal/kde"
	"selest/internal/kernel"
	"selest/internal/query"
	"selest/internal/sample"
)

// oracleBinsFor finds the observed-optimal bin count for a histogram
// builder on one workload — the paper's "optimum number of bins we
// observed in our experiments".
func oracleBinsFor(build func(k int) (errmetrics.Estimator, error), w *query.Workload) (int, error) {
	return bandwidth.OracleBins(func(k int) float64 {
		est, err := build(k)
		if err != nil {
			return math.Inf(1)
		}
		mre, _ := errmetrics.MRE(est, w)
		if math.IsNaN(mre) {
			return math.Inf(1)
		}
		return mre
	}, 2, 2000)
}

// Fig8 reproduces figure 8: the MRE of 1% queries for equi-width,
// equi-depth and max-diff histograms (each at its observed-optimal bin
// count), pure sampling, and the uniform estimator, across the data files.
// Expected shape: uniform loses badly everywhere except uniform data;
// equi-width ≳ equi-depth on large metric domains; sampling trails the
// histograms.
// Each data file is one independent cell — every row lands in its own
// slot, so the table is identical at any worker count.
func Fig8(env *Env) (*Report, error) {
	rep := &Report{
		ID:    "fig8",
		Title: "histogram estimators vs. sampling and the uniform assumption (1% queries, optimal bins)",
		Table: &Table{Columns: []string{"EWH", "EDH", "MDH", "sample", "uniform"}},
	}
	files := PromisingFiles()
	rows := make([]TableRow, len(files))
	err := forEach(len(files), env.workers(), func(i int) error {
		file := files[i]
		f, err := env.File(file)
		if err != nil {
			return err
		}
		lo, hi := f.Domain()
		samples, err := env.DefaultSample(file)
		if err != nil {
			return err
		}
		w, err := env.Workload(file, 0.01)
		if err != nil {
			return err
		}

		mreAtOptimum := func(build func(k int) (errmetrics.Estimator, error)) float64 {
			k, err := oracleBinsFor(build, w)
			if err != nil {
				return math.NaN()
			}
			est, err := build(k)
			if err != nil {
				return math.NaN()
			}
			mre, _ := errmetrics.MRE(est, w)
			return mre
		}

		ewh := mreAtOptimum(func(k int) (errmetrics.Estimator, error) {
			return histogram.BuildEquiWidth(samples, k, lo, hi)
		})
		edh := mreAtOptimum(func(k int) (errmetrics.Estimator, error) {
			return histogram.BuildEquiDepth(samples, k)
		})
		mdh := mreAtOptimum(func(k int) (errmetrics.Estimator, error) {
			return histogram.BuildMaxDiff(samples, k)
		})
		sampMRE, _ := errmetrics.MRE(sample.NewPureEstimator(samples), w)
		uni, err := histogram.BuildUniform(samples, lo, hi)
		if err != nil {
			return err
		}
		uniMRE, _ := errmetrics.MRE(uni, w)

		rows[i] = TableRow{
			Label:  file,
			Values: []float64{ewh, edh, mdh, sampMRE, uniMRE},
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.Table.Rows = rows
	rep.Notes = append(rep.Notes,
		"paper: uniform is the overall loser (600% on ci/iw-like data); equi-width generally wins on large metric domains, contradicting the small-domain results of Poosala et al.")
	return rep, nil
}

// Fig9 reproduces figure 9: equi-width histograms with the
// observed-optimal bin count (h-opt) against the normal scale rule (h-NS).
// Expected shape: h-NS within a few points of h-opt on every file.
func Fig9(env *Env) (*Report, error) {
	rep := &Report{
		ID:    "fig9",
		Title: "equi-width histograms: observed-optimal vs. normal scale bin counts (1% queries)",
		Table: &Table{Columns: []string{"MRE h-opt", "MRE h-NS", "bins opt", "bins NS"}},
	}
	var worstGap float64
	for _, file := range PromisingFiles() {
		f, err := env.File(file)
		if err != nil {
			return nil, err
		}
		lo, hi := f.Domain()
		samples, err := env.DefaultSample(file)
		if err != nil {
			return nil, err
		}
		w, err := env.Workload(file, 0.01)
		if err != nil {
			return nil, err
		}
		build := func(k int) (errmetrics.Estimator, error) {
			return histogram.BuildEquiWidth(samples, k, lo, hi)
		}
		kOpt, err := oracleBinsFor(build, w)
		if err != nil {
			return nil, err
		}
		hOpt, err := build(kOpt)
		if err != nil {
			return nil, err
		}
		mreOpt, _ := errmetrics.MRE(hOpt, w)

		kNS, err := bandwidth.NormalScaleBins(samples, lo, hi, 8192)
		if err != nil {
			return nil, err
		}
		hNS, err := build(kNS)
		if err != nil {
			return nil, err
		}
		mreNS, _ := errmetrics.MRE(hNS, w)

		if gap := mreNS - mreOpt; gap > worstGap {
			worstGap = gap
		}
		rep.Table.Rows = append(rep.Table.Rows, TableRow{
			Label:  file,
			Values: []float64{mreOpt, mreNS, float64(kOpt), float64(kNS)},
		})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("worst h-NS excess over h-opt: %.3f MRE (paper: about 3%% on average)", worstGap))
	return rep, nil
}

// Fig10 reproduces figure 10: the relative error of 1% queries as a
// function of position on uniform data for the three boundary policies.
// Expected shape: untreated error explodes at the boundaries; both
// treatments flatten it, boundary kernels slightly ahead of reflection.
func Fig10(env *Env) (*Report, error) {
	const file = "u(20)"
	f, err := env.File(file)
	if err != nil {
		return nil, err
	}
	samples, err := env.DefaultSample(file)
	if err != nil {
		return nil, err
	}
	lo, hi := f.Domain()
	h, err := bandwidth.NormalScaleBandwidth(samples, kernel.Epanechnikov{})
	if err != nil {
		return nil, err
	}
	sweep, err := query.PositionSweep(f.Records, lo, hi, 0.01, 200)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig10", Title: "relative error of 1% queries vs. position for boundary treatments (uniform data)"}
	type modeRow struct {
		name string
		mode kde.BoundaryMode
	}
	var edgeErr []float64
	for _, m := range []modeRow{
		{"no treatment", kde.BoundaryNone},
		{"reflection", kde.BoundaryReflect},
		{"boundary kernels", kde.BoundaryKernels},
	} {
		est, err := kde.New(samples, kde.Config{Bandwidth: h, Boundary: m.mode, DomainLo: lo, DomainHi: hi})
		if err != nil {
			return nil, err
		}
		points := errmetrics.ByPosition(est, sweep)
		s := Series{Name: m.name}
		for _, p := range points {
			s.X = append(s.X, p.Pos/(hi-lo))
			s.Y = append(s.Y, p.Relative)
		}
		rep.Series = append(rep.Series, s)
		edgeErr = append(edgeErr, math.Max(s.Y[0], s.Y[len(s.Y)-1]))
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"worst boundary relative error: none %.3f, reflection %.3f, boundary kernels %.3f (paper: both treatments reduce the error considerably; boundary kernels slightly ahead)",
		edgeErr[0], edgeErr[1], edgeErr[2]))
	return rep, nil
}

// Fig11 reproduces figure 11: kernel estimators (boundary kernels) whose
// bandwidths come from the oracle (h-opt), the normal scale rule (h-NS)
// and the 2-step direct plug-in rule (h-DPI2). Expected shape: h-NS good
// on the synthetic files; h-DPI2 clearly better on the clustered
// "real"-data stand-ins.
func Fig11(env *Env) (*Report, error) {
	rep := &Report{
		ID:    "fig11",
		Title: "kernel estimation: bandwidth selection rules (1% queries)",
		Table: &Table{Columns: []string{"h-opt", "h-NS", "h-DPI2"}},
	}
	for _, file := range PromisingFiles() {
		f, err := env.File(file)
		if err != nil {
			return nil, err
		}
		lo, hi := f.Domain()
		samples, err := env.DefaultSample(file)
		if err != nil {
			return nil, err
		}
		w, err := env.Workload(file, 0.01)
		if err != nil {
			return nil, err
		}
		// One fit context covers all 49 oracle candidates, the NS rule, the
		// DPI pilots, and the three final estimators: one sort per file
		// instead of one per candidate. ctx.NewEstimator is safe for the
		// oracle's concurrent loss evaluations.
		ctx, err := kde.NewFitContext(samples)
		if err != nil {
			return nil, err
		}
		mreFor := func(h float64) float64 {
			est, err := ctx.NewEstimator(kde.Config{Bandwidth: h, Boundary: kde.BoundaryKernels, DomainLo: lo, DomainHi: hi})
			if err != nil {
				return math.Inf(1)
			}
			mre, _ := errmetrics.MRE(est, w)
			if math.IsNaN(mre) {
				return math.Inf(1)
			}
			return mre
		}
		hNS, err := bandwidth.NormalScaleBandwidthSorted(ctx.Sorted(), kernel.Epanechnikov{})
		if err != nil {
			return nil, err
		}
		hOpt, err := bandwidth.OracleWorkers(mreFor, hNS/64, hNS*64, 49, env.workers())
		if err != nil {
			return nil, err
		}
		hDPI, err := bandwidth.DPIBandwidthContext(ctx, kernel.Epanechnikov{}, 2, lo, hi)
		if err != nil {
			return nil, err
		}
		rep.Table.Rows = append(rep.Table.Rows, TableRow{
			Label:  file,
			Values: []float64{mreFor(hOpt), mreFor(hNS), mreFor(hDPI)},
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: h-NS slightly ahead of h-DPI2 on synthetic files; h-DPI2 clearly ahead on real data; h-DPI2 within ~5 points of h-opt")
	return rep, nil
}

// Fig12 reproduces figure 12: the most promising estimators — equi-width
// histograms (h-NS), kernel estimators (boundary kernels, h-DPI2), the
// hybrid estimator, and the average shifted histogram — on 1% queries
// across the data files. Expected shape: kernel best on smooth synthetic
// files (ASH close); hybrid best on the clustered stand-ins.
func Fig12(env *Env) (*Report, error) {
	rep := &Report{
		ID:    "fig12",
		Title: "comparison of the most promising estimators (1% queries)",
		Table: &Table{Columns: []string{"EWH", "Kernel", "Hybrid", "ASH"}},
	}
	files := PromisingFiles()
	rows := make([]TableRow, len(files))
	err := forEach(len(files), env.workers(), func(i int) error {
		file := files[i]
		f, err := env.File(file)
		if err != nil {
			return err
		}
		lo, hi := f.Domain()
		samples, err := env.DefaultSample(file)
		if err != nil {
			return err
		}
		w, err := env.Workload(file, 0.01)
		if err != nil {
			return err
		}
		ewh, err := core.Build(samples, core.Options{Method: core.EquiWidth, DomainLo: lo, DomainHi: hi})
		if err != nil {
			return err
		}
		kern, err := core.Build(samples, core.Options{
			Method: core.Kernel, Boundary: kde.BoundaryKernels, Rule: core.DPI, DomainLo: lo, DomainHi: hi,
		})
		if err != nil {
			return err
		}
		hyb, err := hybrid.New(samples, lo, hi, hybrid.Config{})
		if err != nil {
			return err
		}
		ash, err := core.Build(samples, core.Options{Method: core.ASH, DomainLo: lo, DomainHi: hi})
		if err != nil {
			return err
		}
		row := TableRow{Label: file}
		for _, est := range []errmetrics.Estimator{ewh, kern, hyb, ash} {
			mre, _ := errmetrics.MRE(est, w)
			row.Values = append(row.Values, mre)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.Table.Rows = rows
	rep.Notes = append(rep.Notes,
		"paper: kernel most accurate on u(20)/n(20)/e(20) with ASH slightly behind; hybrid most accurate on the TIGER files; near-tie on ci/iw")
	return rep, nil
}
