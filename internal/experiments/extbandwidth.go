package experiments

import (
	"fmt"
	"math"

	"selest/internal/bandwidth"
	"selest/internal/core"
	"selest/internal/errmetrics"
	"selest/internal/kde"
	"selest/internal/online"
	"selest/internal/query"
	"selest/internal/xrand"
)

// extBandwidthRules is the ablation column set: the paper's searched
// rules against the closed-form engine, with the MRE-minimising oracle
// as the floor. Each rule is evaluated on its native estimator — the
// searched rules on the fig12 kernel configuration (boundary kernels),
// the closed-form rules on the beta-kernel estimator they were derived
// for, the oracle on the fig12 configuration over an h grid.
var extBandwidthRules = []string{"normal-scale", "dpi", "lscv", "beta-closed-form", "exact-mise", "oracle"}

// extBandwidthBuild fits one (rule, file) cell and returns the estimator
// plus its selected bandwidth (so the report can show what each rule
// chose — fit wall time is benchmarked separately in BENCH_refit, where
// it belongs: wall clock in a report would make parallel and sequential
// runs render differently).
func extBandwidthBuild(rule string, samples []float64, lo, hi float64, w *query.Workload) (core.Estimator, float64, error) {
	var (
		est core.Estimator
		err error
	)
	switch rule {
	case "beta-closed-form":
		est, err = core.Build(samples, core.Options{Method: core.BetaKernel, Rule: core.BetaClosedForm, DomainLo: lo, DomainHi: hi})
	case "exact-mise":
		est, err = core.Build(samples, core.Options{Method: core.BetaKernel, Rule: core.ExactMISE, DomainLo: lo, DomainHi: hi})
	case "oracle":
		ctx, cerr := kde.NewFitContext(samples)
		if cerr != nil {
			return nil, 0, cerr
		}
		span := hi - lo
		loss := func(h float64) float64 {
			cand, ferr := ctx.NewEstimator(kde.Config{Bandwidth: h, Boundary: kde.BoundaryKernels, DomainLo: lo, DomainHi: hi})
			if ferr != nil {
				return math.Inf(1)
			}
			mre, _ := errmetrics.MRE(cand, w)
			return mre
		}
		h, oerr := bandwidth.Oracle(loss, span/1e4, span/2, 25)
		if oerr != nil {
			return nil, 0, oerr
		}
		est, err = core.Build(samples, core.Options{Method: core.Kernel, Bandwidth: h, Boundary: kde.BoundaryKernels, DomainLo: lo, DomainHi: hi})
	default:
		est, err = core.Build(samples, core.Options{Method: core.Kernel, Rule: core.BandwidthRule(rule), Boundary: kde.BoundaryKernels, DomainLo: lo, DomainHi: hi})
	}
	var h float64
	switch e := est.(type) {
	case *kde.Estimator:
		h = e.Bandwidth()
	case *kde.BetaEstimator:
		h = e.Bandwidth()
	}
	return est, h, err
}

// ExtBandwidth ablates the closed-form bandwidth engine: MRE of the
// beta-closed-form and exact-mise rules against the searched rules
// (normal scale, DPI, LSCV) and the MRE-oracle over the promising-files
// set, per-rule selected bandwidth and median q-error, and an online drift
// run comparing the closed-form refit path against the DPI refit path
// on a location-shifting stream.
func ExtBandwidth(env *Env) (*Report, error) {
	files := PromisingFiles()
	rep := &Report{
		ID:    "ext-bandwidth",
		Title: "closed-form bandwidth engine vs searched rules (MRE, 1% queries)",
		Table: &Table{Columns: extBandwidthRules},
	}

	type fileInput struct {
		lo, hi  float64
		samples []float64
		w       *query.Workload
	}
	inputs := make([]fileInput, len(files))
	for i, file := range files {
		f, err := env.File(file)
		if err != nil {
			return nil, err
		}
		lo, hi := f.Domain()
		samples, err := env.DefaultSample(file)
		if err != nil {
			return nil, err
		}
		w, err := env.Workload(file, 0.01)
		if err != nil {
			return nil, err
		}
		inputs[i] = fileInput{lo: lo, hi: hi, samples: samples, w: w}
	}

	nRules := len(extBandwidthRules)
	mres := make([]float64, len(files)*nRules)
	qmeds := make([]float64, len(files)*nRules)
	hfracs := make([]float64, len(files)*nRules)
	err := forEach(len(mres), env.workers(), func(idx int) error {
		fi, ri := idx/nRules, idx%nRules
		in, rule := inputs[fi], extBandwidthRules[ri]
		est, h, err := extBandwidthBuild(rule, in.samples, in.lo, in.hi, in.w)
		if err != nil {
			return fmt.Errorf("ext-bandwidth: %s on %s: %w", rule, files[fi], err)
		}
		mre, _ := errmetrics.MRE(est, in.w)
		mres[idx] = mre
		qmeds[idx] = errmetrics.QErrors(est, in.w).Median
		hfracs[idx] = h / (in.hi - in.lo)
		return nil
	})
	if err != nil {
		return nil, err
	}

	for fi, file := range files {
		rep.Table.Rows = append(rep.Table.Rows, TableRow{Label: file, Values: mres[fi*nRules : (fi+1)*nRules]})
	}
	// Per-rule summary: mean MRE, median q-error, and the mean selected
	// bandwidth as a fraction of the domain — what each rule chose, not
	// just how it scored.
	for ri, rule := range extBandwidthRules {
		var mreSum, qSum, hSum float64
		for fi := range files {
			mreSum += mres[fi*nRules+ri]
			qSum += qmeds[fi*nRules+ri]
			hSum += hfracs[fi*nRules+ri]
		}
		k := float64(len(files))
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%-16s mean MRE %.3f, mean median-q-error %.2f, mean h/span %.4f",
			rule, mreSum/k, qSum/k, hSum/k))
	}

	if err := extBandwidthDrift(env, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// extBandwidthDrift streams a location-shifting mixture through two
// online estimators — the DPI refit path and the closed-form refit path
// — and records each stage's MRE against the stage's own records. Both
// engines share cadence, reservoir size and seed, so the curves isolate
// the bandwidth rule.
func extBandwidthDrift(env *Env, rep *Report) error {
	const (
		stages     = 8
		perStage   = 10_000
		reservoir  = 2_000
		domainLo   = 0.0
		domainHi   = 1e6
		queryCount = 200
	)
	seed := env.Config().Seed ^ 0xbeefcafe

	dpiBuilder := func(samples []float64) (online.Fitted, error) {
		return core.Build(samples, core.Options{Method: core.Kernel, Rule: core.DPI, Boundary: kde.BoundaryKernels, DomainLo: domainLo, DomainHi: domainHi})
	}
	engines := []struct {
		name  string
		build online.Builder
	}{
		{"dpi under drift", dpiBuilder},
		{"beta-closed-form under drift", online.ClosedFormBuilder(0, 0)},
	}

	series := make([]Series, len(engines))
	ests := make([]*online.Estimator, len(engines))
	for i, eng := range engines {
		est, err := online.New(eng.build, online.Config{ReservoirSize: reservoir, RefitEvery: reservoir, Seed: seed})
		if err != nil {
			return err
		}
		ests[i] = est
		series[i] = Series{Name: eng.name}
	}

	r := xrand.New(seed)
	qrng := xrand.New(seed ^ 0x51)
	window := make([]float64, perStage)
	for stage := 0; stage < stages; stage++ {
		// A three-component mixture whose location walks a quarter of the
		// domain over the run — enough to leave the initial fit useless.
		shift := float64(stage) * (domainHi / 4 / stages)
		for i := range window {
			var x float64
			switch i % 3 {
			case 0:
				x = 1e5 + shift + r.Float64()*5e4
			case 1:
				x = 3e5 + shift + r.Float64()*1e4
			default:
				x = 2e5 + shift + r.Float64()*3e5
			}
			window[i] = x
		}
		w, err := query.Generate(window, domainLo, domainHi, 0.05, queryCount, qrng)
		if err != nil {
			return err
		}
		for i := range engines {
			for _, x := range window {
				ests[i].Insert(x)
			}
			if err := ests[i].Flush(); err != nil {
				return err
			}
			mre, _ := errmetrics.MRE(ests[i], w)
			series[i].X = append(series[i].X, float64(stage))
			series[i].Y = append(series[i].Y, mre)
		}
	}
	rep.Series = append(rep.Series, series...)

	var last [2]float64
	for i := range series {
		last[i] = series[i].Y[len(series[i].Y)-1]
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"drift: final-stage MRE dpi %.3f vs beta-closed-form %.3f over %d stages (shift %.0f/stage)",
		last[0], last[1], stages, domainHi/4/stages))
	return nil
}
