package experiments

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		if err := forEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
	if err := forEach(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReportsSmallestIndexError(t *testing.T) {
	errAt := func(i int) error { return fmt.Errorf("cell %d failed", i) }
	for _, workers := range []int{1, 8} {
		err := forEach(50, workers, func(i int) error {
			if i == 13 || i == 31 || i == 47 {
				return errAt(i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 13 failed" {
			t.Fatalf("workers=%d: got %v, want the smallest-index error", workers, err)
		}
	}
}

// TestParallelReportsMatchSequential is the harness acceptance property:
// the same environment configuration run with 1 worker and with 8 must
// produce deeply equal reports for every driver.
func TestParallelReportsMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full driver sweep")
	}
	cfg := Config{QueryCount: 40, SampleSize: 300, Seed: 7}
	seqCfg, parCfg := cfg, cfg
	seqCfg.Parallel = 1
	parCfg.Parallel = 8
	drivers := AllDrivers()

	seqEnv, parEnv := NewEnv(seqCfg), NewEnv(parCfg)
	seq := RunDrivers(seqEnv, drivers)
	par := RunDrivers(parEnv, drivers)
	for i, d := range drivers {
		if (seq[i].Err == nil) != (par[i].Err == nil) {
			t.Fatalf("%s: sequential err %v vs parallel err %v", d.ID, seq[i].Err, par[i].Err)
		}
		if seq[i].Err != nil {
			continue
		}
		if !reportsEqual(seq[i].Report, par[i].Report) {
			t.Fatalf("%s: parallel report differs from sequential\nseq: %s\npar: %s",
				d.ID, seq[i].Report.RenderString(), par[i].Report.RenderString())
		}
	}
}

// floatsEqual is bit-exact float equality with NaN == NaN (what
// reflect.DeepEqual refuses to say about IEEE floats).
func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// reportsEqual is bit-exact report equality: every series point, table
// cell and note must match to the last mantissa bit (NaN cells included).
func reportsEqual(a, b *Report) bool {
	if a.ID != b.ID || a.Title != b.Title || !reflect.DeepEqual(a.Notes, b.Notes) {
		return false
	}
	if len(a.Series) != len(b.Series) {
		return false
	}
	for i := range a.Series {
		if a.Series[i].Name != b.Series[i].Name ||
			!floatsEqual(a.Series[i].X, b.Series[i].X) ||
			!floatsEqual(a.Series[i].Y, b.Series[i].Y) {
			return false
		}
	}
	if (a.Table == nil) != (b.Table == nil) {
		return false
	}
	if a.Table != nil {
		if !reflect.DeepEqual(a.Table.Columns, b.Table.Columns) ||
			len(a.Table.Rows) != len(b.Table.Rows) {
			return false
		}
		for i := range a.Table.Rows {
			if a.Table.Rows[i].Label != b.Table.Rows[i].Label ||
				!floatsEqual(a.Table.Rows[i].Values, b.Table.Rows[i].Values) {
				return false
			}
		}
	}
	return true
}

// TestRunDriversOrderAndErrors: results arrive in input order and a
// driver error is carried in its slot without disturbing the others.
func TestRunDriversOrderAndErrors(t *testing.T) {
	boom := errors.New("boom")
	drivers := []Driver{
		{ID: "a", Run: func(*Env) (*Report, error) { return &Report{ID: "a"}, nil }},
		{ID: "b", Run: func(*Env) (*Report, error) { return nil, boom }},
		{ID: "c", Run: func(*Env) (*Report, error) { return &Report{ID: "c"}, nil }},
	}
	res := RunDrivers(NewEnv(Config{Parallel: 4}), drivers)
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Report.ID != "a" || res[2].Report.ID != "c" {
		t.Fatalf("results out of order: %+v", res)
	}
	if !errors.Is(res[1].Err, boom) {
		t.Fatalf("driver b error = %v", res[1].Err)
	}
}

// TestEnvConcurrentCaching: many goroutines requesting the same and
// different keys must each observe exactly one generated instance per key.
func TestEnvConcurrentCaching(t *testing.T) {
	env := NewEnv(Config{QueryCount: 30, SampleSize: 200, Seed: 11})
	names := []string{"u(20)", "n(20)", "e(20)"}
	const goroutines = 24
	files := make([][]uintptr, len(names))
	for i := range files {
		files[i] = make([]uintptr, goroutines)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for ni, name := range names {
				f, err := env.File(name)
				if err != nil {
					t.Error(err)
					return
				}
				files[ni][g] = reflect.ValueOf(f).Pointer()
				if _, err := env.Sample(name, 150); err != nil {
					t.Error(err)
				}
				if _, err := env.Workload(name, 0.01); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
	for ni, ptrs := range files {
		for g := 1; g < goroutines; g++ {
			if ptrs[g] != ptrs[0] {
				t.Fatalf("%s: goroutine %d saw a different *File instance", names[ni], g)
			}
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := NewEnv(Config{Parallel: 3}).workers(); got != 3 {
		t.Fatalf("workers = %d, want 3", got)
	}
	if got := NewEnv(Config{}).workers(); got < 1 {
		t.Fatalf("default workers = %d", got)
	}
}
