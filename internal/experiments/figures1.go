package experiments

import (
	"fmt"
	"math"

	"selest/internal/bandwidth"
	"selest/internal/core"
	"selest/internal/errmetrics"
	"selest/internal/histogram"
	"selest/internal/kde"
	"selest/internal/kernel"
	"selest/internal/query"
	"selest/internal/sample"
	"selest/internal/stats"
)

// Table2 reproduces the data-file inventory (paper Table 2): name,
// distribution, domain parameter p and record count, plus summary
// statistics our generators produce.
func Table2(env *Env) (*Report, error) {
	rep := &Report{
		ID:    "table2",
		Title: "properties of the data files",
		Table: &Table{Columns: []string{"p", "#records", "distinct", "mean", "std"}},
	}
	for _, name := range datasetNames() {
		f, err := env.File(name)
		if err != nil {
			return nil, err
		}
		s := stats.Summarize(f.Records)
		rep.Table.Rows = append(rep.Table.Rows, TableRow{
			Label: name,
			Values: []float64{
				float64(f.P), float64(f.Len()), float64(s.DistinctValues), s.Mean, s.Std,
			},
		})
	}
	return rep, nil
}

// datasetNames returns the catalog names in Table 2 order; a tiny wrapper
// so the experiments package has one authoritative call site.
func datasetNames() []string {
	return []string{
		"u(15)", "u(20)", "n(10)", "n(15)", "n(20)", "e(15)", "e(20)",
		"arap1", "arap2", "rr1(12)", "rr1(22)", "rr2(12)", "rr2(22)", "iw",
	}
}

// Fig3 reproduces figure 3: the signed absolute error of 1% range queries
// as a function of the query position on uniform data, for a kernel
// estimator without boundary treatment. Expected shape: error spikes
// (underestimation) at both boundaries, near-zero error in the centre.
func Fig3(env *Env) (*Report, error) {
	const file = "u(20)"
	f, err := env.File(file)
	if err != nil {
		return nil, err
	}
	samples, err := env.DefaultSample(file)
	if err != nil {
		return nil, err
	}
	lo, hi := f.Domain()
	h, err := bandwidth.NormalScaleBandwidth(samples, kernel.Epanechnikov{})
	if err != nil {
		return nil, err
	}
	est, err := kde.New(samples, kde.Config{Bandwidth: h, Boundary: kde.BoundaryNone, DomainLo: lo, DomainHi: hi})
	if err != nil {
		return nil, err
	}
	sweep, err := query.PositionSweep(f.Records, lo, hi, 0.01, 200)
	if err != nil {
		return nil, err
	}
	points := errmetrics.ByPosition(est, sweep)
	s := Series{Name: "signed error (records), kernel w/o boundary treatment"}
	for _, p := range points {
		s.X = append(s.X, p.Pos/(hi-lo)) // normalised position
		s.Y = append(s.Y, p.Signed)
	}
	rep := &Report{ID: "fig3", Title: "absolute estimation error of 1% queries vs. position (uniform data)", Series: []Series{s}}

	// Shape note: boundary error vs. centre error.
	edge := math.Max(math.Abs(s.Y[0]), math.Abs(s.Y[len(s.Y)-1]))
	centre := 0.0
	for i := len(s.Y) * 2 / 5; i < len(s.Y)*3/5; i++ {
		centre += math.Abs(s.Y[i])
	}
	centre /= float64(len(s.Y) / 5)
	rep.Notes = append(rep.Notes, fmt.Sprintf("max boundary |error| = %.0f records; mean centre |error| = %.0f records (paper: up to ~500 at the boundary of a 1000-record query)", edge, centre))
	return rep, nil
}

// binGrid is the log-spaced bin-count grid of the bins-curve figures.
func binGrid() []int {
	return []int{2, 3, 5, 8, 12, 18, 27, 40, 60, 90, 135, 200, 300, 450, 675, 1000, 1500}
}

// ewhMRECurve computes the MRE of equi-width histograms over the bin grid
// for one data file and query size.
func ewhMRECurve(env *Env, file string, size float64) (Series, error) {
	f, err := env.File(file)
	if err != nil {
		return Series{}, err
	}
	samples, err := env.DefaultSample(file)
	if err != nil {
		return Series{}, err
	}
	w, err := env.Workload(file, size)
	if err != nil {
		return Series{}, err
	}
	lo, hi := f.Domain()
	s := Series{Name: "equi-width " + file}
	for _, k := range binGrid() {
		h, err := histogram.BuildEquiWidth(samples, k, lo, hi)
		if err != nil {
			return Series{}, err
		}
		mre, _ := errmetrics.MRE(h, w)
		s.X = append(s.X, float64(k))
		s.Y = append(s.Y, mre)
	}
	return s, nil
}

// Fig4 reproduces figure 4: the MRE of 1% queries on n(20) as a function
// of the equi-width histogram's bin count, against the flat pure-sampling
// error. Expected shape: U-curve whose minimum undercuts the sampling
// line; too few bins is worse than sampling.
func Fig4(env *Env) (*Report, error) {
	const file = "n(20)"
	curve, err := ewhMRECurve(env, file, 0.01)
	if err != nil {
		return nil, err
	}
	samples, err := env.DefaultSample(file)
	if err != nil {
		return nil, err
	}
	w, err := env.Workload(file, 0.01)
	if err != nil {
		return nil, err
	}
	sampMRE, _ := errmetrics.MRE(sample.NewPureEstimator(samples), w)
	flat := Series{Name: "pure sampling"}
	for _, x := range curve.X {
		flat.X = append(flat.X, x)
		flat.Y = append(flat.Y, sampMRE)
	}
	rep := &Report{ID: "fig4", Title: "MRE vs. number of bins, n(20), 1% queries", Series: []Series{curve, flat}}
	bx, by := curve.minY()
	rep.Notes = append(rep.Notes, fmt.Sprintf("EWH minimum: MRE %.3f at %d bins; sampling MRE %.3f (paper: 7%% at 20 bins vs. 17.5%% sampling)", by, int(bx), sampMRE))
	return rep, nil
}

// Fig5 reproduces figure 5: the bins curve across domain cardinalities
// n(10), n(15), n(20). Expected shape: larger domains (fewer duplicates
// per value) show higher error at every bin count.
func Fig5(env *Env) (*Report, error) {
	rep := &Report{ID: "fig5", Title: "MRE vs. number of bins across domain cardinalities"}
	var curveMeans []float64
	for _, file := range []string{"n(10)", "n(15)", "n(20)"} {
		curve, err := ewhMRECurve(env, file, 0.01)
		if err != nil {
			return nil, err
		}
		rep.Series = append(rep.Series, curve)
		mean := 0.0
		for _, y := range curve.Y {
			mean += y
		}
		curveMeans = append(curveMeans, mean/float64(len(curve.Y)))
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"curve-average MRE by cardinality: n(10)=%.4f n(15)=%.4f n(20)=%.4f (paper: the error curve sits considerably higher for large domain cardinalities — small domains' heavy duplicates keep query result sizes, and so relative errors, bounded)",
		curveMeans[0], curveMeans[1], curveMeans[2]))
	return rep, nil
}

// Fig6 reproduces figure 6: MRE(n(20), 1%) as a function of the sample
// size for pure sampling, equi-width histograms (normal scale bins) and
// kernel estimators (normal scale bandwidth, boundary kernels). Expected
// shape: all three fall with n; kernel < histogram < sampling.
func Fig6(env *Env) (*Report, error) {
	const file = "n(20)"
	f, err := env.File(file)
	if err != nil {
		return nil, err
	}
	lo, hi := f.Domain()
	w, err := env.Workload(file, 0.01)
	if err != nil {
		return nil, err
	}
	sizes := []int{200, 500, 1000, 2000, 5000, 10000}
	sampling := Series{Name: "sampling"}
	ewh := Series{Name: "equi-width (h-NS)"}
	kern := Series{Name: "kernel (h-NS, boundary kernels)"}
	for _, n := range sizes {
		samples, err := env.Sample(file, n)
		if err != nil {
			return nil, err
		}
		mreS, _ := errmetrics.MRE(sample.NewPureEstimator(samples), w)
		sampling.X = append(sampling.X, float64(n))
		sampling.Y = append(sampling.Y, mreS)

		he, err := core.Build(samples, core.Options{Method: core.EquiWidth, DomainLo: lo, DomainHi: hi})
		if err != nil {
			return nil, err
		}
		mreH, _ := errmetrics.MRE(he, w)
		ewh.X = append(ewh.X, float64(n))
		ewh.Y = append(ewh.Y, mreH)

		ke, err := core.Build(samples, core.Options{Method: core.Kernel, Boundary: kde.BoundaryKernels, DomainLo: lo, DomainHi: hi})
		if err != nil {
			return nil, err
		}
		mreK, _ := errmetrics.MRE(ke, w)
		kern.X = append(kern.X, float64(n))
		kern.Y = append(kern.Y, mreK)
	}
	rep := &Report{ID: "fig6", Title: "MRE(n(20), 1%) vs. sample size", Series: []Series{sampling, ewh, kern}}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"at n=200: sampling %.3f, EWH %.3f, kernel %.3f; at n=10000: sampling %.3f, EWH %.3f, kernel %.3f (paper: EWH ~12%%@200 → ~4%%@10000, kernel < EWH < sampling)",
		sampling.Y[0], ewh.Y[0], kern.Y[0],
		sampling.Y[len(sampling.Y)-1], ewh.Y[len(ewh.Y)-1], kern.Y[len(kern.Y)-1]))
	return rep, nil
}

// Fig7 reproduces figure 7: the MRE of equi-width histograms (normal scale
// rule) across the four query sizes for several data files. Expected
// shape: error falls as the query grows.
func Fig7(env *Env) (*Report, error) {
	files := []string{"u(20)", "n(20)", "e(20)", "arap1", "arap2", "iw"}
	rep := &Report{
		ID:    "fig7",
		Title: "MRE of equi-width histograms for different query sizes",
		Table: &Table{Columns: []string{"1%", "2%", "5%", "10%"}},
	}
	for _, file := range files {
		f, err := env.File(file)
		if err != nil {
			return nil, err
		}
		lo, hi := f.Domain()
		samples, err := env.DefaultSample(file)
		if err != nil {
			return nil, err
		}
		est, err := core.Build(samples, core.Options{Method: core.EquiWidth, DomainLo: lo, DomainHi: hi})
		if err != nil {
			return nil, err
		}
		row := TableRow{Label: file}
		for _, size := range query.StandardSizes {
			w, err := env.Workload(file, size)
			if err != nil {
				return nil, err
			}
			mre, _ := errmetrics.MRE(est, w)
			row.Values = append(row.Values, mre)
		}
		rep.Table.Rows = append(rep.Table.Rows, row)
	}
	rep.Notes = append(rep.Notes, "paper: error decreases with query size; e.g. arap2 17.5% at 1% queries vs. 4.5% at 10% queries")
	return rep, nil
}
