package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"selest/internal/plot"
)

// Series is one named curve: parallel X/Y slices.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Table is a labelled grid: one row per label, one value per column.
type Table struct {
	Columns []string
	Rows    []TableRow
}

// TableRow is one table row.
type TableRow struct {
	Label  string
	Values []float64
}

// Report is the structured result of one experiment driver.
type Report struct {
	// ID is the experiment identifier from DESIGN.md ("fig3", "table2"...).
	ID string
	// Title describes what the paper's figure shows.
	Title string
	// Series holds curve data (error-vs-parameter figures).
	Series []Series
	// Table holds grid data (per-file bar-chart figures).
	Table *Table
	// Notes records shape findings ("boundary error 23× centre error").
	Notes []string
}

// Render writes the report as aligned text: an ASCII chart for curve
// figures, the table for per-file figures, and the shape notes. Use
// RenderRaw to additionally list every series point.
func (r *Report) Render(w io.Writer) {
	r.render(w, false)
}

// RenderRaw is Render plus the full point listing of every series — the
// exact rows a plotting tool would consume.
func (r *Report) RenderRaw(w io.Writer) {
	r.render(w, true)
}

func (r *Report) render(w io.Writer, raw bool) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Series) > 0 {
		ps := make([]plot.Series, len(r.Series))
		for i, s := range r.Series {
			ps[i] = plot.Series{Name: s.Name, X: s.X, Y: s.Y}
		}
		// Bin-count and sample-size sweeps read best on a log x axis;
		// position sweeps are linear. Heuristic: log when x spans more
		// than a decade and is positive.
		logX := false
		if n := len(r.Series[0].X); n > 1 {
			first, last := r.Series[0].X[0], r.Series[0].X[n-1]
			logX = first > 0 && last/first > 10
		}
		fmt.Fprintln(w)
		io.WriteString(w, plot.Render(ps, plot.Config{LogX: logX}))
	}
	if raw {
		for _, s := range r.Series {
			fmt.Fprintf(w, "\n-- series: %s --\n", s.Name)
			for i := range s.X {
				fmt.Fprintf(w, "  %14.4f  %14.6f\n", s.X[i], s.Y[i])
			}
		}
	}
	if r.Table != nil {
		fmt.Fprintf(w, "\n%-10s", "file")
		for _, c := range r.Table.Columns {
			fmt.Fprintf(w, "  %14s", c)
		}
		fmt.Fprintln(w)
		for _, row := range r.Table.Rows {
			fmt.Fprintf(w, "%-10s", row.Label)
			for _, v := range row.Values {
				if math.IsNaN(v) {
					fmt.Fprintf(w, "  %14s", "n/a")
				} else {
					fmt.Fprintf(w, "  %14.4f", v)
				}
			}
			fmt.Fprintln(w)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderString renders the report to a string.
func (r *Report) RenderString() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

// minY returns the (x, y) of the smallest y in the series.
func (s Series) minY() (float64, float64) {
	if len(s.Y) == 0 {
		return math.NaN(), math.NaN()
	}
	bi := 0
	for i, y := range s.Y {
		if y < s.Y[bi] {
			bi = i
		}
	}
	return s.X[bi], s.Y[bi]
}

// Driver runs one experiment against an environment.
type Driver struct {
	ID    string
	Title string
	Run   func(*Env) (*Report, error)
}

// AllDrivers lists every experiment in paper order.
func AllDrivers() []Driver {
	return []Driver{
		{"table2", "data file inventory", Table2},
		{"fig3", "absolute error of 1% queries vs. position (uniform data, untreated kernel)", Fig3},
		{"fig4", "MRE vs. number of bins (equi-width vs. sampling, n(20))", Fig4},
		{"fig5", "MRE vs. number of bins across domain cardinalities (n(10)/n(15)/n(20))", Fig5},
		{"fig6", "MRE(n(20),1%) vs. sample size (sampling / equi-width / kernel)", Fig6},
		{"fig7", "MRE of equi-width histograms across query sizes", Fig7},
		{"fig8", "histogram estimators vs. sampling and uniform (optimal bins, 1% queries)", Fig8},
		{"fig9", "equi-width histograms: observed-optimal vs. normal scale bin counts", Fig9},
		{"fig10", "relative error of 1% queries vs. position for boundary treatments", Fig10},
		{"fig11", "kernel bandwidth rules: h-opt vs. h-NS vs. h-DPI2", Fig11},
		{"fig12", "most promising estimators (EWH / kernel / hybrid / ASH, 1% queries)", Fig12},
		{"ext-rates", "extension: empirical MISE convergence rates vs. theory", ExtRates},
		{"ext-feedback", "extension: adaptive estimation from query feedback", ExtFeedback},
		{"ext-2d", "extension: 2-D product-kernel vs. attribute independence", Ext2D},
		{"ext-sketch", "extension: sampled vs. sketch-maintained equi-depth histograms", ExtSketch},
		{"ext-join", "extension: join result-size estimation from kernel densities", ExtJoin},
		{"ext-bandwidth", "extension: closed-form bandwidth rules vs searched rules, plus drift", ExtBandwidth},
		{"ext-all", "extension: every estimator × every file, MRE + q-error", ExtAll},
	}
}

// DriverByID returns the driver with the given ID.
func DriverByID(id string) (Driver, bool) {
	for _, d := range AllDrivers() {
		if d.ID == id {
			return d, true
		}
	}
	return Driver{}, false
}

// IDs lists the experiment IDs in order.
func IDs() []string {
	ds := AllDrivers()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.ID
	}
	return out
}
