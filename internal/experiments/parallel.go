package experiments

import (
	"sync"
	"sync/atomic"
)

// Parallel execution substrate for the experiment harness. Drivers fan
// their independent cells (per data file, per method) across a bounded
// worker pool, and a full run fans the drivers themselves. Results land in
// per-index slots and errors are reported smallest-index-first, so a
// parallel run is indistinguishable from a sequential one — same reports,
// same error — at any worker count. No external concurrency packages: the
// pool is a shared atomic cursor over [0, n).

// forEach calls fn(i) for every i in [0, n) using at most workers
// goroutines. It always runs every index (no early cancellation — cells
// are cheap relative to the cost of tearing down a run), and returns the
// error of the smallest failing index so the caller sees the exact error
// a sequential loop would have surfaced first.
func forEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 1 || n == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if workers > n {
		workers = n
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// DriverResult is one driver's outcome in a RunDrivers batch.
type DriverResult struct {
	Driver Driver
	Report *Report
	Err    error
}

// RunDrivers executes the drivers against the environment with the
// environment's configured parallelism and returns one result per driver,
// in input order. Driver-internal cell parallelism shares the same worker
// budget, so total concurrency stays near Config.Parallel rather than
// multiplying.
func RunDrivers(env *Env, drivers []Driver) []DriverResult {
	results := make([]DriverResult, len(drivers))
	_ = forEach(len(drivers), env.workers(), func(i int) error {
		d := drivers[i]
		rep, err := d.Run(env)
		results[i] = DriverResult{Driver: d, Report: rep, Err: err}
		return nil
	})
	return results
}
