package experiments

import (
	"selest/internal/parallel"
)

// Parallel execution substrate for the experiment harness. Drivers fan
// their independent cells (per data file, per method) across a bounded
// worker pool, and a full run fans the drivers themselves. Results land in
// per-index slots and errors are reported smallest-index-first, so a
// parallel run is indistinguishable from a sequential one — same reports,
// same error — at any worker count. The pool itself lives in
// internal/parallel, shared with the fit-path engine (parallel bandwidth
// search, hybrid per-bin fits).

// forEach calls fn(i) for every i in [0, n) using at most workers
// goroutines, returning the error of the smallest failing index.
func forEach(n, workers int, fn func(i int) error) error {
	return parallel.ForEach(n, workers, fn)
}

// DriverResult is one driver's outcome in a RunDrivers batch.
type DriverResult struct {
	Driver Driver
	Report *Report
	Err    error
}

// RunDrivers executes the drivers against the environment with the
// environment's configured parallelism and returns one result per driver,
// in input order. Driver-internal cell parallelism shares the same worker
// budget, so total concurrency stays near Config.Parallel rather than
// multiplying.
func RunDrivers(env *Env, drivers []Driver) []DriverResult {
	results := make([]DriverResult, len(drivers))
	_ = forEach(len(drivers), env.workers(), func(i int) error {
		d := drivers[i]
		rep, err := d.Run(env)
		results[i] = DriverResult{Driver: d, Report: rep, Err: err}
		return nil
	})
	return results
}
