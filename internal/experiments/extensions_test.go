package experiments

import (
	"math"
	"testing"
)

func TestExtRatesMatchTheory(t *testing.T) {
	rep, err := ExtRates(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	kSlope := logLogSlope(rep.Series[0])
	hSlope := logLogSlope(rep.Series[1])
	// Theory: kernel O(n^{-4/5}), equi-width O(n^{-2/3}). Empirical slopes
	// carry sampling noise; a ±0.12 band is tight enough to distinguish
	// the two rates from each other and from pure sampling's O(n^{-1}).
	if math.Abs(kSlope-(-0.8)) > 0.12 {
		t.Fatalf("kernel MISE slope %v, theory -0.8", kSlope)
	}
	if math.Abs(hSlope-(-2.0/3.0)) > 0.12 {
		t.Fatalf("equi-width MISE slope %v, theory -0.667", hSlope)
	}
	// The kernel estimator converges strictly faster.
	if kSlope >= hSlope {
		t.Fatalf("kernel slope %v not steeper than histogram slope %v", kSlope, hSlope)
	}
	// MISE falls strongly over the sampled range (per-step monotonicity is
	// too strict at 6 trials per point; the 64× range must show at least a
	// 4× drop even for the slower histogram rate).
	for _, s := range rep.Series {
		if s.Y[len(s.Y)-1] >= s.Y[0]/4 {
			t.Fatalf("%s: MISE barely fell: %v → %v", s.Name, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
}

func TestExtFeedbackImprovesHeldOut(t *testing.T) {
	rep, err := ExtFeedback(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Table.Rows[0]
	base, adaptive := r.Values[0], r.Values[1]
	if adaptive >= base*0.7 {
		t.Fatalf("feedback gained too little: base %v, adaptive %v", base, adaptive)
	}
}

func TestExt2DBeatsIndependence(t *testing.T) {
	rep, err := Ext2D(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Table.Rows[0]
	joint, grid, indep := r.Values[0], r.Values[1], r.Values[2]
	if joint*1.5 >= indep {
		t.Fatalf("2-D kernel (%v) should clearly beat independence (%v) on correlated data", joint, indep)
	}
	if grid*1.5 >= indep {
		t.Fatalf("2-D grid (%v) should clearly beat independence (%v) on correlated data", grid, indep)
	}
}

func TestExtSketchTracksExact(t *testing.T) {
	rep, err := ExtSketch(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Table.Rows {
		sampled, exact, sk, tuples := r.Values[0], r.Values[1], r.Values[2], r.Values[3]
		// The sketch must track the exact full-data histogram closely...
		if math.Abs(sk-exact) > 0.05+0.15*exact {
			t.Fatalf("%s: sketch MRE %v far from exact MRE %v", r.Label, sk, exact)
		}
		// ...with far fewer tuples than records.
		if tuples > 5000 {
			t.Fatalf("%s: sketch holds %v tuples", r.Label, tuples)
		}
		_ = sampled
	}
}

func TestExtJoinAccuracy(t *testing.T) {
	rep, err := ExtJoin(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Table.Rows {
		relErr := r.Values[2]
		if relErr > 0.10 {
			t.Fatalf("%s: kernel join estimate off by %v", r.Label, relErr)
		}
	}
}

func TestExtAllCoversEveryMethod(t *testing.T) {
	rep, err := ExtAll(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Columns) != 14 {
		t.Fatalf("ext-all covers %d methods", len(rep.Table.Columns))
	}
	if len(rep.Table.Rows) != len(PromisingFiles()) {
		t.Fatalf("ext-all covers %d files", len(rep.Table.Rows))
	}
	// Every cell is a finite MRE (no estimator silently broke on any file).
	for _, r := range rep.Table.Rows {
		for i, v := range r.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("%s/%s: MRE %v", r.Label, rep.Table.Columns[i], v)
			}
		}
	}
	// One winner note per file, each reporting a sane median q-error.
	if len(rep.Notes) != len(rep.Table.Rows) {
		t.Fatalf("%d notes for %d rows", len(rep.Notes), len(rep.Table.Rows))
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = 7·x^{-0.5} exactly.
	s := Series{}
	for _, x := range []float64{10, 100, 1000} {
		s.X = append(s.X, x)
		s.Y = append(s.Y, 7*math.Pow(x, -0.5))
	}
	if got := logLogSlope(s); math.Abs(got-(-0.5)) > 1e-12 {
		t.Fatalf("slope = %v, want -0.5", got)
	}
}
