package experiments

import (
	"fmt"
	"math"

	"selest/internal/core"
	"selest/internal/errmetrics"
	"selest/internal/kde"
	"selest/internal/query"
)

// extAllOptions is the estimator configuration of one ext-all cell — the
// kernel-family methods get the configuration fig12 uses.
func extAllOptions(m core.Method, lo, hi float64) core.Options {
	opts := core.Options{Method: m, DomainLo: lo, DomainHi: hi}
	switch m {
	case core.Kernel:
		opts.Boundary = kde.BoundaryKernels
		opts.Rule = core.DPI
	case core.VariableKernel:
		opts.Boundary = kde.BoundaryReflect
		opts.Rule = core.DPI
	case core.BetaKernel:
		opts.Rule = core.BetaClosedForm
	}
	return opts
}

// ExtAll runs every estimation method the library implements — the
// paper's comparison set plus every extension estimator — over the
// promising-files set with 1% queries, reporting MRE and the median
// q-error. It is the "one table to rule them all" a practitioner would
// consult before picking an estimator, and it exercises every method of
// the public API in one sweep.
//
// The file × method grid is embarrassingly parallel: every cell builds
// its own estimator from shared (cached, read-only) samples and
// workloads, writes its MRE into a dedicated slot, and the winner's
// q-error is computed after the grid settles — so the report is
// identical at any worker count.
func ExtAll(env *Env) (*Report, error) {
	methods := env.Methods()
	files := PromisingFiles()
	cols := make([]string, 0, len(methods))
	for _, m := range methods {
		cols = append(cols, string(m))
	}
	rep := &Report{
		ID:    "ext-all",
		Title: "every estimator × every file (MRE, 1% queries)",
		Table: &Table{Columns: cols},
	}

	// Warm the per-file inputs sequentially (cheap, cached) so the cell
	// work below is pure estimator build + evaluation.
	type fileInput struct {
		lo, hi  float64
		samples []float64
		w       *query.Workload
	}
	inputs := make([]fileInput, len(files))
	for i, file := range files {
		f, err := env.File(file)
		if err != nil {
			return nil, err
		}
		lo, hi := f.Domain()
		samples, err := env.DefaultSample(file)
		if err != nil {
			return nil, err
		}
		w, err := env.Workload(file, 0.01)
		if err != nil {
			return nil, err
		}
		inputs[i] = fileInput{lo: lo, hi: hi, samples: samples, w: w}
	}

	mres := make([]float64, len(files)*len(methods))
	err := forEach(len(mres), env.workers(), func(idx int) error {
		fi, mi := idx/len(methods), idx%len(methods)
		in, m := inputs[fi], methods[mi]
		est, err := core.Build(in.samples, extAllOptions(m, in.lo, in.hi))
		if err != nil {
			return fmt.Errorf("ext-all: %s on %s: %w", m, files[fi], err)
		}
		mre, _ := errmetrics.MRE(est, in.w)
		mres[idx] = mre
		return nil
	})
	if err != nil {
		return nil, err
	}

	for fi, file := range files {
		row := TableRow{Label: file, Values: mres[fi*len(methods) : (fi+1)*len(methods)]}
		rep.Table.Rows = append(rep.Table.Rows, row)
		bestMRE, bestM := math.Inf(1), methods[0]
		for mi, m := range methods {
			if mre := row.Values[mi]; mre < bestMRE {
				bestMRE, bestM = mre, m
			}
		}
		in := inputs[fi]
		est, err := core.Build(in.samples, extAllOptions(bestM, in.lo, in.hi))
		if err != nil {
			return nil, fmt.Errorf("ext-all: %s on %s: %w", bestM, file, err)
		}
		qe := errmetrics.QErrors(est, in.w)
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%-8s winner: %s (MRE %.3f, median q-error %.2f)", file, bestM, bestMRE, qe.Median))
	}
	return rep, nil
}
