package experiments

import (
	"fmt"
	"math"

	"selest/internal/core"
	"selest/internal/errmetrics"
	"selest/internal/kde"
)

// ExtAll runs every estimation method the library implements — the
// paper's comparison set plus every extension estimator — over the
// promising-files set with 1% queries, reporting MRE and the median
// q-error. It is the "one table to rule them all" a practitioner would
// consult before picking an estimator, and it exercises every method of
// the public API in one sweep.
func ExtAll(env *Env) (*Report, error) {
	methods := env.Methods()
	cols := make([]string, 0, len(methods))
	for _, m := range methods {
		cols = append(cols, string(m))
	}
	rep := &Report{
		ID:    "ext-all",
		Title: "every estimator × every file (MRE, 1% queries)",
		Table: &Table{Columns: cols},
	}

	type cell struct {
		mre    float64
		qerr   float64
		method core.Method
	}
	var bestPerFile []cell

	for _, file := range PromisingFiles() {
		f, err := env.File(file)
		if err != nil {
			return nil, err
		}
		lo, hi := f.Domain()
		samples, err := env.DefaultSample(file)
		if err != nil {
			return nil, err
		}
		w, err := env.Workload(file, 0.01)
		if err != nil {
			return nil, err
		}
		row := TableRow{Label: file}
		best := cell{mre: math.Inf(1)}
		for _, m := range methods {
			opts := core.Options{Method: m, DomainLo: lo, DomainHi: hi}
			// Give kernel-family methods the configuration fig12 uses.
			switch m {
			case core.Kernel:
				opts.Boundary = kde.BoundaryKernels
				opts.Rule = core.DPI
			case core.VariableKernel:
				opts.Boundary = kde.BoundaryReflect
				opts.Rule = core.DPI
			}
			est, err := core.Build(samples, opts)
			if err != nil {
				return nil, fmt.Errorf("ext-all: %s on %s: %w", m, file, err)
			}
			mre, _ := errmetrics.MRE(est, w)
			row.Values = append(row.Values, mre)
			if mre < best.mre {
				qe := errmetrics.QErrors(est, w)
				best = cell{mre: mre, qerr: qe.Median, method: m}
			}
		}
		rep.Table.Rows = append(rep.Table.Rows, row)
		bestPerFile = append(bestPerFile, best)
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%-8s winner: %s (MRE %.3f, median q-error %.2f)", file, best.method, best.mre, best.qerr))
	}
	return rep, nil
}
