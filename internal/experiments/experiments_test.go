package experiments

import (
	"math"
	"strings"
	"testing"
)

// testEnv returns a shared reduced-size environment: 250 queries per
// workload instead of the paper's 1,000 keeps the whole suite fast while
// leaving every qualitative shape intact.
var sharedEnv = NewEnv(Config{QueryCount: 250})

// row fetches a table row by label.
func row(t *testing.T, rep *Report, label string) []float64 {
	t.Helper()
	if rep.Table == nil {
		t.Fatalf("%s: no table", rep.ID)
	}
	for _, r := range rep.Table.Rows {
		if r.Label == label {
			return r.Values
		}
	}
	t.Fatalf("%s: no row %q", rep.ID, label)
	return nil
}

// col finds a column index by name.
func col(t *testing.T, rep *Report, name string) int {
	t.Helper()
	for i, c := range rep.Table.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("%s: no column %q", rep.ID, name)
	return -1
}

func TestTable2(t *testing.T) {
	rep, err := Table2(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Table.Rows) != 14 {
		t.Fatalf("Table 2 has %d rows, want 14", len(rep.Table.Rows))
	}
	recordsCol := col(t, rep, "#records")
	if got := row(t, rep, "iw")[recordsCol]; got != 199523 {
		t.Fatalf("iw records = %v, want 199523", got)
	}
	if got := row(t, rep, "arap1")[recordsCol]; got != 52120 {
		t.Fatalf("arap1 records = %v, want 52120", got)
	}
}

func TestFig3BoundarySpike(t *testing.T) {
	rep, err := Fig3(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Series[0]
	// Edge error must dwarf the centre error (paper: ~500 vs ~0 records).
	edge := math.Max(math.Abs(s.Y[0]), math.Abs(s.Y[len(s.Y)-1]))
	centre := 0.0
	n := 0
	for i := len(s.Y) * 2 / 5; i < len(s.Y)*3/5; i++ {
		centre += math.Abs(s.Y[i])
		n++
	}
	centre /= float64(n)
	if edge < 5*centre {
		t.Fatalf("boundary error %v not ≫ centre error %v", edge, centre)
	}
	// The untreated kernel loses mass at the boundary: the signed error
	// there must be negative (underestimation).
	if s.Y[0] >= 0 || s.Y[len(s.Y)-1] >= 0 {
		t.Fatalf("boundary errors should be negative (mass loss): %v, %v", s.Y[0], s.Y[len(s.Y)-1])
	}
}

func TestFig4UCurveBeatsSampling(t *testing.T) {
	rep, err := Fig4(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	curve, flat := rep.Series[0], rep.Series[1]
	_, best := curve.minY()
	sampling := flat.Y[0]
	if best >= sampling {
		t.Fatalf("EWH optimum %v does not beat sampling %v", best, sampling)
	}
	// Too few bins must be worse than the optimum by a wide margin
	// (the U shape).
	if curve.Y[0] < 3*best {
		t.Fatalf("2-bin error %v does not show the U shape (optimum %v)", curve.Y[0], best)
	}
	// The curve approaches the sampling error for many bins.
	lastY := curve.Y[len(curve.Y)-1]
	if math.Abs(lastY-sampling) > 0.5*sampling {
		t.Fatalf("many-bin error %v does not approach sampling error %v", lastY, sampling)
	}
}

func TestFig5CardinalityOrdering(t *testing.T) {
	rep, err := Fig5(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	means := make([]float64, 3)
	for i, s := range rep.Series {
		sum := 0.0
		for _, y := range s.Y {
			sum += y
		}
		means[i] = sum / float64(len(s.Y))
	}
	// n(10) ≤ n(15) ≤ n(20) on curve average (small slack for noise).
	if !(means[0] <= means[1]*1.1 && means[1] <= means[2]) {
		t.Fatalf("cardinality ordering broken: n(10)=%v n(15)=%v n(20)=%v", means[0], means[1], means[2])
	}
}

func TestFig6ConsistencyAndRanking(t *testing.T) {
	rep, err := Fig6(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Series {
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last >= first {
			t.Fatalf("%s: error did not fall with sample size (%v → %v)", s.Name, first, last)
		}
	}
	// Ranking at the paper's sample size (2000, index 3):
	// kernel < histogram < sampling.
	sampling, ewh, kern := rep.Series[0].Y[3], rep.Series[1].Y[3], rep.Series[2].Y[3]
	if !(kern < ewh && ewh < sampling) {
		t.Fatalf("ranking at n=2000 broken: sampling=%v ewh=%v kernel=%v", sampling, ewh, kern)
	}
}

func TestFig7ErrorFallsWithQuerySize(t *testing.T) {
	rep, err := Fig7(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Table.Rows {
		if r.Values[len(r.Values)-1] >= r.Values[0] {
			t.Fatalf("%s: 10%% error %v not below 1%% error %v", r.Label, r.Values[len(r.Values)-1], r.Values[0])
		}
	}
}

func TestFig8HistogramComparison(t *testing.T) {
	rep, err := Fig8(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	uniCol := col(t, rep, "uniform")
	ewhCol := col(t, rep, "EWH")
	sampCol := col(t, rep, "sample")
	// Uniform must lose badly on the skewed files (paper: 600% on ci).
	for _, f := range []string{"n(20)", "e(20)", "iw"} {
		r := row(t, rep, f)
		if r[uniCol] < 3*r[ewhCol] {
			t.Fatalf("%s: uniform %v not ≫ EWH %v", f, r[uniCol], r[ewhCol])
		}
	}
	// On uniform data the uniform estimator is unbeatable (paper's
	// "except for uniform data distribution").
	u := row(t, rep, "u(20)")
	if u[uniCol] > u[ewhCol]*1.1 {
		t.Fatalf("u(20): uniform %v should match/beat EWH %v", u[uniCol], u[ewhCol])
	}
	// Histograms at their optimum beat sampling on the synthetic files.
	for _, f := range []string{"u(20)", "n(20)", "e(20)"} {
		r := row(t, rep, f)
		if r[ewhCol] >= r[sampCol] {
			t.Fatalf("%s: EWH %v not below sampling %v", f, r[ewhCol], r[sampCol])
		}
	}
}

func TestFig9NormalScaleNearOptimalOnSynthetic(t *testing.T) {
	rep, err := Fig9(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	optCol := col(t, rep, "MRE h-opt")
	nsCol := col(t, rep, "MRE h-NS")
	// Paper: the rule lands within a few points of the optimum; that holds
	// for the smooth synthetic files (clustered data defeats any
	// normal-reference rule — see fig11's same finding for bandwidths).
	for _, f := range []string{"n(20)", "e(20)"} {
		r := row(t, rep, f)
		if r[nsCol]-r[optCol] > 0.06 {
			t.Fatalf("%s: h-NS MRE %v more than 6 points above h-opt %v", f, r[nsCol], r[optCol])
		}
	}
	// h-opt must never exceed h-NS (it is an oracle over a superset).
	for _, r := range rep.Table.Rows {
		if r.Values[optCol] > r.Values[nsCol]+1e-9 {
			t.Fatalf("%s: oracle %v worse than rule %v", r.Label, r.Values[optCol], r.Values[nsCol])
		}
	}
}

func TestFig10BoundaryTreatments(t *testing.T) {
	rep, err := Fig10(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	edge := func(s Series) float64 {
		return math.Max(s.Y[0], s.Y[len(s.Y)-1])
	}
	none, refl, bker := edge(rep.Series[0]), edge(rep.Series[1]), edge(rep.Series[2])
	if refl > none/3 {
		t.Fatalf("reflection boundary error %v not ≪ untreated %v", refl, none)
	}
	if bker > none/3 {
		t.Fatalf("boundary-kernel error %v not ≪ untreated %v", bker, none)
	}
}

func TestFig11DPIBeatsNSOnClusteredData(t *testing.T) {
	rep, err := Fig11(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	optCol := col(t, rep, "h-opt")
	nsCol := col(t, rep, "h-NS")
	dpiCol := col(t, rep, "h-DPI2")
	for _, f := range []string{"arap1", "arap2", "rr1(22)", "rr2(22)", "iw"} {
		r := row(t, rep, f)
		if r[dpiCol] >= r[nsCol] {
			t.Fatalf("%s: DPI2 %v not below NS %v", f, r[dpiCol], r[nsCol])
		}
	}
	// On smooth synthetic files NS is competitive (within 2 points of DPI).
	for _, f := range []string{"n(20)", "e(20)"} {
		r := row(t, rep, f)
		if r[nsCol] > r[dpiCol]+0.02 {
			t.Fatalf("%s: NS %v unexpectedly far above DPI %v", f, r[nsCol], r[dpiCol])
		}
	}
	// Oracle is a lower bound for both rules.
	for _, r := range rep.Table.Rows {
		if r.Values[optCol] > r.Values[nsCol]+1e-9 || r.Values[optCol] > r.Values[dpiCol]+1e-9 {
			t.Fatalf("%s: oracle not a lower bound: %v", r.Label, r.Values)
		}
	}
}

func TestFig12PromisingEstimators(t *testing.T) {
	rep, err := Fig12(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	ewhCol := col(t, rep, "EWH")
	kCol := col(t, rep, "Kernel")
	hCol := col(t, rep, "Hybrid")
	// Kernel most accurate on the smooth synthetic files.
	for _, f := range []string{"u(20)", "n(20)", "e(20)"} {
		r := row(t, rep, f)
		for i, v := range r {
			if i != kCol && v < r[kCol] {
				t.Fatalf("%s: column %d (%v) beats kernel (%v)", f, i, v, r[kCol])
			}
		}
	}
	// Hybrid most accurate on the clustered TIGER stand-ins.
	for _, f := range []string{"arap1", "arap2", "rr1(22)", "rr2(22)"} {
		r := row(t, rep, f)
		if !(r[hCol] < r[kCol] && r[hCol] < r[ewhCol]) {
			t.Fatalf("%s: hybrid %v not the winner (kernel %v, EWH %v)", f, r[hCol], r[kCol], r[ewhCol])
		}
	}
}

func TestAllDriversRunAndRender(t *testing.T) {
	// Integration sweep: a tiny environment runs every driver end to end
	// and the reports render non-trivially.
	env := NewEnv(Config{QueryCount: 60, SampleSize: 500, Seed: 424242})
	for _, d := range AllDrivers() {
		rep, err := d.Run(env)
		if err != nil {
			t.Fatalf("%s: %v", d.ID, err)
		}
		if rep.ID != d.ID {
			t.Fatalf("driver %s returned report %s", d.ID, rep.ID)
		}
		text := rep.RenderString()
		if !strings.Contains(text, rep.ID) || len(text) < 100 {
			t.Fatalf("%s: implausible render output (%d bytes)", d.ID, len(text))
		}
	}
}

func TestDriverLookup(t *testing.T) {
	if _, ok := DriverByID("fig12"); !ok {
		t.Fatal("fig12 driver missing")
	}
	if _, ok := DriverByID("nope"); ok {
		t.Fatal("bogus driver should not resolve")
	}
	if len(IDs()) != len(AllDrivers()) {
		t.Fatal("IDs/AllDrivers mismatch")
	}
}

func TestEnvCaching(t *testing.T) {
	env := NewEnv(Config{QueryCount: 10, SampleSize: 50})
	f1, err := env.File("u(15)")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := env.File("u(15)")
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("File not cached")
	}
	s1, err := env.DefaultSample("u(15)")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := env.DefaultSample("u(15)")
	if err != nil {
		t.Fatal(err)
	}
	if &s1[0] != &s2[0] {
		t.Fatal("Sample not cached")
	}
	w1, err := env.Workload("u(15)", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := env.Workload("u(15)", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Fatal("Workload not cached")
	}
	if _, err := env.File("bogus"); err == nil {
		t.Fatal("unknown file should error")
	}
}

func TestEnvDefaults(t *testing.T) {
	env := NewEnv(Config{})
	cfg := env.Config()
	if cfg.SampleSize != 2000 || cfg.QueryCount != 1000 || cfg.Seed == 0 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}
