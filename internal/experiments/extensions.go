package experiments

import (
	"fmt"
	"math"

	"selest/internal/bandwidth"
	"selest/internal/dist"
	"selest/internal/distinct"
	"selest/internal/errmetrics"
	"selest/internal/feedback"
	"selest/internal/histogram"
	"selest/internal/join"
	"selest/internal/kde"
	"selest/internal/kernel"
	"selest/internal/query"
	"selest/internal/sample"
	"selest/internal/sketch"
	"selest/internal/xmath"
	"selest/internal/xrand"
)

// This file holds extension experiments that go beyond the paper's
// figures: an empirical check of the convergence-rate theory of §2/§4, a
// demonstration of query-feedback adaptation (future work #3), and the
// two-dimensional product-kernel estimator (future work #1).

// ExtRates verifies the paper's convergence-rate theory empirically: with
// the asymptotically optimal smoothing parameter, the kernel estimator's
// MISE falls like O(n^{−4/5}) and the equi-width histogram's like
// O(n^{−2/3}) (paper §4.1/§4.2). The driver measures the empirical MISE
// against an analytic Normal truth over a grid of sample sizes and fits
// log-log slopes.
func ExtRates(env *Env) (*Report, error) {
	truth := dist.NewNormal(0, 1)
	r1 := dist.RoughnessFirst(truth)
	r2 := dist.RoughnessSecond(truth)
	sizes := []int{100, 200, 400, 800, 1600, 3200, 6400}
	const trials = 6
	lo, hi := -4.5, 4.5
	grid := xmath.Linspace(lo, hi, 512)
	dx := grid[1] - grid[0]

	rng := xrand.New(env.Config().Seed ^ 0xabcdef)
	miseOf := func(density func(float64) float64) float64 {
		sum := 0.0
		for _, x := range grid {
			d := density(x) - truth.PDF(x)
			sum += d * d
		}
		return sum * dx
	}

	kernelSeries := Series{Name: "kernel MISE (h = h_K(n))"}
	histSeries := Series{Name: "equi-width MISE (h = h_EW(n))"}
	for _, n := range sizes {
		var mK, mH float64
		for trial := 0; trial < trials; trial++ {
			samples := make([]float64, n)
			for i := range samples {
				samples[i] = truth.Sample(rng)
			}
			hK := bandwidth.OptimalBandwidth(n, kernel.Epanechnikov{}, r2)
			est, err := kde.New(samples, kde.Config{Bandwidth: hK})
			if err != nil {
				return nil, err
			}
			mK += miseOf(est.Density)

			hEW := bandwidth.OptimalBinWidth(n, r1)
			bins := bandwidth.BinsForWidth(hEW, lo, hi, 0)
			hist, err := histogram.BuildEquiWidth(samples, bins, lo, hi)
			if err != nil {
				return nil, err
			}
			mH += miseOf(hist.Density)
		}
		kernelSeries.X = append(kernelSeries.X, float64(n))
		kernelSeries.Y = append(kernelSeries.Y, mK/trials)
		histSeries.X = append(histSeries.X, float64(n))
		histSeries.Y = append(histSeries.Y, mH/trials)
	}

	kSlope := logLogSlope(kernelSeries)
	hSlope := logLogSlope(histSeries)
	rep := &Report{
		ID:     "ext-rates",
		Title:  "empirical MISE convergence rates (extension: theory check of §4)",
		Series: []Series{kernelSeries, histSeries},
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"fitted log-log slopes: kernel %.3f (theory −0.8), equi-width %.3f (theory −0.667)", kSlope, hSlope))
	return rep, nil
}

// logLogSlope fits the least-squares slope of log(Y) against log(X).
func logLogSlope(s Series) float64 {
	n := float64(len(s.X))
	var sx, sy, sxx, sxy float64
	for i := range s.X {
		x, y := math.Log(s.X[i]), math.Log(s.Y[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// ExtFeedback demonstrates query-feedback adaptation (paper future work
// #3): a normal-scale kernel estimator on the clustered arap1 stand-in is
// wrapped with the feedback corrector, trained on half the workload, and
// evaluated on the held-out half.
func ExtFeedback(env *Env) (*Report, error) {
	const file = "arap1"
	f, err := env.File(file)
	if err != nil {
		return nil, err
	}
	lo, hi := f.Domain()
	samples, err := env.DefaultSample(file)
	if err != nil {
		return nil, err
	}
	w, err := env.Workload(file, 0.01)
	if err != nil {
		return nil, err
	}
	h, err := bandwidth.NormalScaleBandwidth(samples, kernel.Epanechnikov{})
	if err != nil {
		return nil, err
	}
	base, err := kde.New(samples, kde.Config{Bandwidth: h, Boundary: kde.BoundaryKernels, DomainLo: lo, DomainHi: hi})
	if err != nil {
		return nil, err
	}
	ad, err := feedback.New(base, lo, hi, feedback.Config{Buckets: 256})
	if err != nil {
		return nil, err
	}
	half := len(w.Queries) / 2
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < half; i++ {
			ad.Observe(w.Queries[i].A, w.Queries[i].B, w.TrueSelectivity(i))
		}
	}
	heldOut := &query.Workload{
		Queries:    w.Queries[half:],
		TrueCounts: w.TrueCounts[half:],
		SizeFrac:   w.SizeFrac,
		N:          w.N,
	}
	baseMRE, _ := errmetrics.MRE(base, heldOut)
	adMRE, _ := errmetrics.MRE(ad, heldOut)
	rep := &Report{
		ID:    "ext-feedback",
		Title: "adaptive estimation from query feedback (extension: future work #3)",
		Table: &Table{
			Columns: []string{"MRE base", "MRE adaptive"},
			Rows: []TableRow{
				{Label: file, Values: []float64{baseMRE, adMRE}},
			},
		},
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"held-out MRE after 3 feedback passes over %d executed queries: %.3f → %.3f", half, baseMRE, adMRE))
	return rep, nil
}

// ExtSketch compares the sample-based equi-depth histogram against a
// streaming equi-depth histogram whose boundaries come from a
// Greenwald–Khanna quantile sketch fed with the entire file — the
// deployment mode where statistics are maintained on the insert path
// instead of by periodic resampling.
func ExtSketch(env *Env) (*Report, error) {
	rep := &Report{
		ID:    "ext-sketch",
		Title: "sampled vs. exact vs. sketch-based equi-depth histograms (extension, 1% queries)",
		Table: &Table{Columns: []string{"MRE sampled", "MRE exact", "MRE sketch", "sketch tuples"}},
	}
	for _, file := range []string{"n(20)", "e(20)", "arap1", "iw"} {
		f, err := env.File(file)
		if err != nil {
			return nil, err
		}
		samples, err := env.DefaultSample(file)
		if err != nil {
			return nil, err
		}
		w, err := env.Workload(file, 0.01)
		if err != nil {
			return nil, err
		}
		lo, hi := f.Domain()
		bins, err := bandwidth.NormalScaleBins(samples, lo, hi, 8192)
		if err != nil {
			return nil, err
		}
		if bins < 10 {
			bins = 10
		}
		sampled, err := histogram.BuildEquiDepth(samples, bins)
		if err != nil {
			return nil, err
		}
		sampMRE, _ := errmetrics.MRE(sampled, w)

		// Exact equi-depth over the full file: the reference the sketch
		// approximates.
		exact, err := histogram.BuildEquiDepth(f.Records, bins)
		if err != nil {
			return nil, err
		}
		exactMRE, _ := errmetrics.MRE(exact, w)

		gk, err := sketch.NewGK(0.002)
		if err != nil {
			return nil, err
		}
		for _, v := range f.Records {
			gk.Insert(v)
		}
		sk, err := sketch.EquiDepthFromSketch(gk, bins)
		if err != nil {
			return nil, err
		}
		skMRE, _ := errmetrics.MRE(sk, w)
		rep.Table.Rows = append(rep.Table.Rows, TableRow{
			Label:  file,
			Values: []float64{sampMRE, exactMRE, skMRE, float64(gk.Summary())},
		})
	}
	rep.Notes = append(rep.Notes,
		"the sketch tracks the exact full-data equi-depth histogram closely while storing only O((1/ε)·log n) tuples; where the sampled histogram beats both, the cause is tail geometry (sample-based boundaries implicitly truncate extreme tails, which the MRE metric rewards), not sketch error")
	return rep, nil
}

// Ext2D evaluates the two-dimensional product-kernel estimator (paper
// future work #1) on correlated data, against the attribute-independence
// assumption (product of two 1-D kernel estimates), which every
// single-column statistics catalog implicitly makes.
func Ext2D(env *Env) (*Report, error) {
	cfg := env.Config()
	rng := xrand.New(cfg.Seed ^ 0x2d2d2d)
	const n = 20000
	lo, hi := 0.0, 1000.0
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		// Strong correlation: y ≈ x plus noise.
		xs[i] = xmath.Clamp(rng.NormalMeanStd(500, 180), lo, hi)
		ys[i] = xmath.Clamp(xs[i]+rng.NormalMeanStd(0, 60), lo, hi)
	}

	sx := xs[:cfg.SampleSize]
	sy := ys[:cfg.SampleSize]
	hx, err := bandwidth.NormalScaleBandwidth(sx, kernel.Epanechnikov{})
	if err != nil {
		return nil, err
	}
	hy, err := bandwidth.NormalScaleBandwidth(sy, kernel.Epanechnikov{})
	if err != nil {
		return nil, err
	}
	joint, err := kde.New2D(sx, sy, kde.Config2D{
		BandwidthX: hx, BandwidthY: hy,
		Reflect: true, LoX: lo, HiX: hi, LoY: lo, HiY: hi,
	})
	if err != nil {
		return nil, err
	}
	margX, err := kde.New(sx, kde.Config{Bandwidth: hx, Boundary: kde.BoundaryReflect, DomainLo: lo, DomainHi: hi})
	if err != nil {
		return nil, err
	}
	margY, err := kde.New(sy, kde.Config{Bandwidth: hy, Boundary: kde.BoundaryReflect, DomainLo: lo, DomainHi: hi})
	if err != nil {
		return nil, err
	}
	grid, err := histogram.BuildGrid2D(sx, sy, 16, 16, lo, hi, lo, hi)
	if err != nil {
		return nil, err
	}

	// Window workload along the correlation diagonal and off it.
	qrng := xrand.New(cfg.Seed ^ 0x77)
	var jointErr, indepErr, gridErr float64
	used := 0
	for q := 0; q < cfg.QueryCount; q++ {
		i := qrng.Intn(n)
		cx, cy := xs[i], ys[i]
		wx, wy := 100.0, 100.0
		ax, bx := xmath.Clamp(cx-wx/2, lo, hi), xmath.Clamp(cx+wx/2, lo, hi)
		ay, by := xmath.Clamp(cy-wy/2, lo, hi), xmath.Clamp(cy+wy/2, lo, hi)
		trueCount := 0
		for j := 0; j < n; j++ {
			if xs[j] >= ax && xs[j] <= bx && ys[j] >= ay && ys[j] <= by {
				trueCount++
			}
		}
		if trueCount == 0 {
			continue
		}
		trueSel := float64(trueCount) / n
		jSel := joint.Selectivity(ax, bx, ay, by)
		iSel := margX.Selectivity(ax, bx) * margY.Selectivity(ay, by)
		gSel := grid.Selectivity(ax, bx, ay, by)
		jointErr += math.Abs(jSel-trueSel) / trueSel
		indepErr += math.Abs(iSel-trueSel) / trueSel
		gridErr += math.Abs(gSel-trueSel) / trueSel
		used++
	}
	if used == 0 {
		return nil, fmt.Errorf("experiments: ext-2d produced no usable queries")
	}
	rep := &Report{
		ID:    "ext-2d",
		Title: "2-D product-kernel estimation vs. attribute independence (extension: future work #1)",
		Table: &Table{
			Columns: []string{"MRE 2-D kernel", "MRE 2-D grid", "MRE independence"},
			Rows: []TableRow{
				{Label: "corr(x,y)", Values: []float64{jointErr / float64(used), gridErr / float64(used), indepErr / float64(used)}},
			},
		},
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"on strongly correlated attributes the independence assumption's MRE is %.1f× the 2-D kernel's",
		(indepErr/float64(used))/(jointErr/float64(used))))
	return rep, nil
}

// ExtJoin evaluates kernel-density join-size estimation (the intermediate
// result-size problem from the paper's introduction): two synthetic
// relations with partially overlapping normal attributes are equi- and
// band-joined; the density-product estimate from 2,000-record samples is
// compared against the exact join sizes and the textbook
// 1/max(distinct) uniform assumption.
func ExtJoin(env *Env) (*Report, error) {
	cfg := env.Config()
	rng := xrand.New(cfg.Seed ^ 0x01014)
	const (
		nR, nS = 80000, 60000
		lo, hi = 0.0, 1 << 16
	)
	mk := func(n int, mean, std float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Round(xmath.Clamp(rng.NormalMeanStd(mean, std), lo, hi))
		}
		return out
	}
	rCol := mk(nR, 26000, 6000)
	sCol := mk(nS, 34000, 7000)

	rSmp, err := sample.WithoutReplacement(rng, rCol, cfg.SampleSize)
	if err != nil {
		return nil, err
	}
	sSmp, err := sample.WithoutReplacement(rng, sCol, cfg.SampleSize)
	if err != nil {
		return nil, err
	}
	kdeOf := func(samples []float64) (*kde.Estimator, error) {
		h, err := bandwidth.NormalScaleBandwidth(samples, kernel.Epanechnikov{})
		if err != nil {
			return nil, err
		}
		return kde.New(samples, kde.Config{Bandwidth: h, Boundary: kde.BoundaryReflect, DomainLo: lo, DomainHi: hi})
	}
	fR, err := kdeOf(rSmp)
	if err != nil {
		return nil, err
	}
	fS, err := kdeOf(sSmp)
	if err != nil {
		return nil, err
	}

	// The uniform (System R) comparison |R|·|S| / max(V(R,a), V(S,b)),
	// with the distinct counts V estimated from the same samples via GEE —
	// what a real optimiser would have at plan time.
	ndv := func(smp []float64, tableSize int) (float64, error) {
		prof, err := distinct.Profile(smp)
		if err != nil {
			return 0, err
		}
		return prof.GEE(tableSize)
	}
	vR, err := ndv(rSmp, nR)
	if err != nil {
		return nil, err
	}
	vS, err := ndv(sSmp, nS)
	if err != nil {
		return nil, err
	}
	uniformEst := float64(nR) * float64(nS) / math.Max(vR, vS)

	exactEqui := join.ExactEquiJoin(rCol, sCol)
	kdeEqui, err := join.Estimate(fR, fS, nR, nS, lo, hi, 1, 0)
	if err != nil {
		return nil, err
	}
	const band = 64
	exactBand := join.ExactBandJoin(rCol, sCol, band)
	kdeBand, err := join.EstimateBand(fR, fS, nR, nS, lo, hi, band, 0)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:    "ext-join",
		Title: "join result-size estimation from kernel densities (extension)",
		Table: &Table{
			Columns: []string{"exact", "kernel est", "rel err", "uniform est"},
			Rows: []TableRow{
				{Label: "equi-join", Values: []float64{float64(exactEqui), kdeEqui, join.RelativeError(kdeEqui, exactEqui), uniformEst}},
				{Label: "band-join", Values: []float64{float64(exactBand), kdeBand, join.RelativeError(kdeBand, exactBand), math.NaN()}},
			},
		},
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"kernel-density join estimates land within %.0f%%/%.0f%% of the exact equi-/band-join sizes; the uniform assumption misses the distribution overlap entirely (%.1f× the true equi-join size)",
		100*join.RelativeError(kdeEqui, exactEqui), 100*join.RelativeError(kdeBand, exactBand), uniformEst/float64(exactEqui)))
	return rep, nil
}
