// Package feedback implements adaptive selectivity estimation using query
// feedback — the paper's third future-work item ("we will include the
// knowledge of previous queries to improve the quality of kernel
// estimators", citing Chen & Roussopoulos, SIGMOD 1994).
//
// The Adaptive estimator wraps any base estimator with a multiplicative
// correction function over the domain. After a query executes, the system
// knows its true result size; Observe feeds that truth back, and the
// correction buckets overlapping the query move toward the observed
// ratio. Estimates become base × correction, so regions the workload
// actually touches converge to the truth even where the base estimator is
// systematically wrong (e.g. a normal-scale kernel on clustered data).
package feedback

import (
	"fmt"
	"math"
	"sync"
)

// Estimator is the base-estimator surface the wrapper needs.
type Estimator interface {
	Selectivity(a, b float64) float64
	Name() string
}

// Config parameterises the Adaptive wrapper.
type Config struct {
	// Buckets is the resolution of the correction grid. Zero defaults
	// to 64.
	Buckets int
	// LearningRate γ ∈ (0, 1] damps each update: a bucket's log-correction
	// moves γ of the way toward the observed log-ratio. Zero defaults
	// to 0.4.
	LearningRate float64
	// MaxCorrection bounds each bucket's multiplicative correction to
	// [1/MaxCorrection, MaxCorrection], keeping a few wrong observations
	// from destabilising the estimator. Zero defaults to 16.
	MaxCorrection float64
}

func (c *Config) applyDefaults() {
	if c.Buckets == 0 {
		c.Buckets = 64
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.4
	}
	if c.MaxCorrection == 0 {
		c.MaxCorrection = 16
	}
}

// Adaptive wraps a base estimator with a feedback-learned correction.
// It is safe for concurrent use; Observe and Selectivity may interleave.
type Adaptive struct {
	base   Estimator
	lo, hi float64
	cfg    Config

	mu sync.RWMutex
	// logCorr holds per-bucket log-corrections; zero means "trust the
	// base estimator".
	logCorr  []float64
	observed int
}

// New wraps base with a correction grid over the domain [lo, hi].
func New(base Estimator, lo, hi float64, cfg Config) (*Adaptive, error) {
	if base == nil {
		return nil, fmt.Errorf("feedback: nil base estimator")
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("feedback: domain [%v, %v] is empty", lo, hi)
	}
	cfg.applyDefaults()
	if cfg.LearningRate < 0 || cfg.LearningRate > 1 {
		return nil, fmt.Errorf("feedback: learning rate %v outside (0, 1]", cfg.LearningRate)
	}
	if cfg.MaxCorrection < 1 {
		return nil, fmt.Errorf("feedback: max correction %v must be >= 1", cfg.MaxCorrection)
	}
	return &Adaptive{
		base:    base,
		lo:      lo,
		hi:      hi,
		cfg:     cfg,
		logCorr: make([]float64, cfg.Buckets),
	}, nil
}

// bucketRange returns the bucket index range [i0, i1) overlapping [a, b].
func (ad *Adaptive) bucketRange(a, b float64) (int, int) {
	width := (ad.hi - ad.lo) / float64(ad.cfg.Buckets)
	i0 := int((a - ad.lo) / width)
	i1 := int(math.Ceil((b - ad.lo) / width))
	if i0 < 0 {
		i0 = 0
	}
	if i1 > ad.cfg.Buckets {
		i1 = ad.cfg.Buckets
	}
	if i1 <= i0 {
		i1 = i0 + 1
		if i1 > ad.cfg.Buckets {
			i0, i1 = ad.cfg.Buckets-1, ad.cfg.Buckets
		}
	}
	return i0, i1
}

// Observe feeds back the true selectivity of an executed query Q(a, b).
// The correction of every bucket the query overlaps moves toward the
// ratio truth/estimate. Feedback with a zero or non-finite truth or
// estimate is ignored (nothing can be learned from log(0)).
func (ad *Adaptive) Observe(a, b, trueSelectivity float64) {
	if b < a {
		return
	}
	a = math.Max(a, ad.lo)
	b = math.Min(b, ad.hi)
	if b < a {
		return
	}
	baseEst := ad.base.Selectivity(a, b)
	if baseEst <= 0 || trueSelectivity <= 0 ||
		math.IsNaN(baseEst) || math.IsNaN(trueSelectivity) {
		return
	}
	// Target ratio relative to the *base* estimate, so repeated feedback
	// on the same region converges instead of compounding.
	target := math.Log(trueSelectivity / baseEst)
	maxLog := math.Log(ad.cfg.MaxCorrection)

	ad.mu.Lock()
	defer ad.mu.Unlock()
	i0, i1 := ad.bucketRange(a, b)
	for i := i0; i < i1; i++ {
		c := ad.logCorr[i] + ad.cfg.LearningRate*(target-ad.logCorr[i])
		if c > maxLog {
			c = maxLog
		} else if c < -maxLog {
			c = -maxLog
		}
		ad.logCorr[i] = c
	}
	ad.observed++
}

// Selectivity returns the corrected estimate: the base estimate times the
// query-width-weighted geometric mean of the overlapped buckets'
// corrections, clamped to [0, 1].
func (ad *Adaptive) Selectivity(a, b float64) float64 {
	if b < a {
		return 0
	}
	qa := math.Max(a, ad.lo)
	qb := math.Min(b, ad.hi)
	if qb < qa {
		return 0
	}
	baseEst := ad.base.Selectivity(a, b)
	if baseEst <= 0 {
		return baseEst
	}

	ad.mu.RLock()
	width := (ad.hi - ad.lo) / float64(ad.cfg.Buckets)
	i0, i1 := ad.bucketRange(qa, qb)
	var logSum, overlapTotal float64
	for i := i0; i < i1; i++ {
		blo := ad.lo + float64(i)*width
		bhi := blo + width
		overlap := math.Min(qb, bhi) - math.Max(qa, blo)
		if overlap <= 0 {
			// Degenerate (point) queries still read one bucket.
			overlap = 1e-12
		}
		logSum += overlap * ad.logCorr[i]
		overlapTotal += overlap
	}
	ad.mu.RUnlock()

	if overlapTotal > 0 {
		baseEst *= math.Exp(logSum / overlapTotal)
	}
	if baseEst < 0 {
		return 0
	}
	if baseEst > 1 {
		return 1
	}
	return baseEst
}

// Observed returns how many feedback observations have been absorbed.
func (ad *Adaptive) Observed() int {
	ad.mu.RLock()
	defer ad.mu.RUnlock()
	return ad.observed
}

// Reset clears all learned corrections.
func (ad *Adaptive) Reset() {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	for i := range ad.logCorr {
		ad.logCorr[i] = 0
	}
	ad.observed = 0
}

// Name identifies the estimator in experiment output.
func (ad *Adaptive) Name() string {
	return "adaptive(" + ad.base.Name() + ")"
}
