package feedback

import (
	"math"
	"sync"
	"testing"

	"selest/internal/core"
	"selest/internal/errmetrics"
	"selest/internal/query"
	"selest/internal/xrand"
)

// biasedEstimator always returns factor × truth for a known uniform truth
// over [0, 1000].
type biasedEstimator struct{ factor float64 }

func (e biasedEstimator) Selectivity(a, b float64) float64 {
	if b < a {
		return 0
	}
	a = math.Max(a, 0)
	b = math.Min(b, 1000)
	if b < a {
		return 0
	}
	return e.factor * (b - a) / 1000
}
func (e biasedEstimator) Name() string { return "biased" }

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0, 1, Config{}); err == nil {
		t.Fatal("nil base should error")
	}
	if _, err := New(biasedEstimator{1}, 5, 5, Config{}); err == nil {
		t.Fatal("empty domain should error")
	}
	if _, err := New(biasedEstimator{1}, 0, 1, Config{LearningRate: 2}); err == nil {
		t.Fatal("learning rate > 1 should error")
	}
	if _, err := New(biasedEstimator{1}, 0, 1, Config{MaxCorrection: 0.5}); err == nil {
		t.Fatal("max correction < 1 should error")
	}
}

func TestNoFeedbackPassesThrough(t *testing.T) {
	base := biasedEstimator{0.5}
	ad, err := New(base, 0, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][2]float64{{0, 100}, {400, 600}, {900, 1000}} {
		if got, want := ad.Selectivity(q[0], q[1]), base.Selectivity(q[0], q[1]); got != want {
			t.Fatalf("untrained wrapper changed the estimate: %v vs %v", got, want)
		}
	}
}

func TestFeedbackCorrectsSystematicBias(t *testing.T) {
	// Base underestimates by 2×; truth of [a,b] is (b−a)/1000.
	ad, err := New(biasedEstimator{0.5}, 0, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(1)
	for i := 0; i < 500; i++ {
		a := r.Float64() * 900
		b := a + 20 + r.Float64()*80
		ad.Observe(a, b, (math.Min(b, 1000)-a)/1000)
	}
	if ad.Observed() != 500 {
		t.Fatalf("Observed = %d", ad.Observed())
	}
	// After feedback, estimates must be close to truth.
	for _, q := range [][2]float64{{100, 200}, {450, 520}, {800, 880}} {
		truth := (q[1] - q[0]) / 1000
		got := ad.Selectivity(q[0], q[1])
		if math.Abs(got-truth)/truth > 0.1 {
			t.Fatalf("Q(%v,%v): corrected estimate %v, truth %v", q[0], q[1], got, truth)
		}
	}
}

func TestFeedbackIsLocal(t *testing.T) {
	// Feedback only on [0, 200] must not disturb estimates far away.
	ad, err := New(biasedEstimator{0.25}, 0, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		ad.Observe(0, 200, 0.2)
	}
	near := ad.Selectivity(50, 150)
	far := ad.Selectivity(700, 800)
	base := biasedEstimator{0.25}
	if math.Abs(far-base.Selectivity(700, 800)) > 1e-12 {
		t.Fatalf("feedback leaked to distant region: %v vs %v", far, base.Selectivity(700, 800))
	}
	if near <= base.Selectivity(50, 150) {
		t.Fatal("feedback did not lift the corrected region")
	}
}

func TestCorrectionBounded(t *testing.T) {
	ad, err := New(biasedEstimator{1}, 0, 1000, Config{MaxCorrection: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Absurd feedback claiming 1000× the base: correction must clamp at 4.
	for i := 0; i < 100; i++ {
		ad.Observe(100, 200, math.Min(1, biasedEstimator{1}.Selectivity(100, 200)*1000))
	}
	got := ad.Selectivity(100, 200)
	want := biasedEstimator{1}.Selectivity(100, 200) * 4
	if got > math.Min(want, 1)+1e-9 {
		t.Fatalf("correction exceeded bound: %v > %v", got, want)
	}
}

func TestIgnoresUnlearnableFeedback(t *testing.T) {
	ad, err := New(biasedEstimator{1}, 0, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ad.Observe(100, 200, 0)          // zero truth
	ad.Observe(200, 100, 0.5)        // inverted
	ad.Observe(100, 200, math.NaN()) // NaN
	ad.Observe(2000, 3000, 0.5)      // outside domain
	if ad.Observed() != 0 {
		t.Fatalf("unlearnable feedback was absorbed: %d", ad.Observed())
	}
}

func TestReset(t *testing.T) {
	ad, err := New(biasedEstimator{0.5}, 0, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ad.Observe(0, 1000, 1)
	}
	ad.Reset()
	if ad.Observed() != 0 {
		t.Fatal("Reset did not clear the count")
	}
	base := biasedEstimator{0.5}
	if got, want := ad.Selectivity(100, 300), base.Selectivity(100, 300); got != want {
		t.Fatalf("Reset did not clear corrections: %v vs %v", got, want)
	}
}

func TestName(t *testing.T) {
	ad, err := New(biasedEstimator{1}, 0, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ad.Name() != "adaptive(biased)" {
		t.Fatalf("Name = %q", ad.Name())
	}
}

func TestConcurrentObserveAndEstimate(t *testing.T) {
	ad, err := New(biasedEstimator{0.5}, 0, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			for i := 0; i < 2000; i++ {
				a := r.Float64() * 900
				ad.Observe(a, a+50, 0.05)
			}
		}(uint64(g))
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed + 100)
			for i := 0; i < 2000; i++ {
				a := r.Float64() * 900
				if s := ad.Selectivity(a, a+50); s < 0 || s > 1 {
					panic("selectivity out of range")
				}
			}
		}(uint64(g))
	}
	wg.Wait()
}

// TestFeedbackImprovesKernelOnClusteredData replays the paper's scenario:
// a normal-scale kernel estimator on clumpy data has high MRE; feeding
// back executed-query truths must cut it substantially.
func TestFeedbackImprovesKernelOnClusteredData(t *testing.T) {
	r := xrand.New(9)
	// Clumpy data: three tight clusters.
	records := make([]float64, 30000)
	centres := []float64{150, 500, 860}
	for i := range records {
		c := centres[r.Intn(3)]
		records[i] = math.Max(0, math.Min(1000, r.NormalMeanStd(c, 12)))
	}
	samples := records[:2000]
	base, err := core.Build(samples, core.Options{
		Method: core.Kernel, DomainLo: 0, DomainHi: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := query.Generate(records, 0, 1000, 0.02, 400, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	before, _ := errmetrics.MRE(base, w)

	ad, err := New(base, 0, 1000, Config{Buckets: 128})
	if err != nil {
		t.Fatal(err)
	}
	// Train on the first half of the workload, evaluate on the second.
	half := len(w.Queries) / 2
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < half; i++ {
			ad.Observe(w.Queries[i].A, w.Queries[i].B, w.TrueSelectivity(i))
		}
	}
	eval := &query.Workload{
		Queries:    w.Queries[half:],
		TrueCounts: w.TrueCounts[half:],
		SizeFrac:   w.SizeFrac,
		N:          w.N,
	}
	afterBase, _ := errmetrics.MRE(base, eval)
	afterAdaptive, _ := errmetrics.MRE(ad, eval)
	if afterAdaptive >= afterBase*0.7 {
		t.Fatalf("feedback did not improve held-out MRE: base %v, adaptive %v (training MRE before: %v)",
			afterBase, afterAdaptive, before)
	}
}

func TestSelectivityEdges(t *testing.T) {
	ad, err := New(biasedEstimator{0.5}, 0, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ad.Selectivity(5, 2) != 0 {
		t.Fatal("inverted query should be 0")
	}
	if ad.Selectivity(2000, 3000) != 0 {
		t.Fatal("out-of-domain query should be 0")
	}
	// Query clipped to the domain behaves like the clipped query.
	if got, want := ad.Selectivity(-100, 1100), ad.Selectivity(0, 1000); got != want {
		t.Fatalf("clipping broken: %v vs %v", got, want)
	}
	// Point query still reads a bucket (degenerate overlap path).
	if got := ad.Selectivity(500, 500); got != 0 {
		t.Fatalf("point query on width-based base = %v, want 0", got)
	}
}

func TestObserveAtDomainEdges(t *testing.T) {
	ad, err := New(biasedEstimator{0.5}, 0, 1000, Config{Buckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Feedback on ranges touching both edges must hit the first and last
	// buckets without index overflow.
	for i := 0; i < 50; i++ {
		ad.Observe(0, 125, 0.125)
		ad.Observe(875, 1000, 0.125)
	}
	if got := ad.Selectivity(0, 125); math.Abs(got-0.125) > 0.02 {
		t.Fatalf("left-edge corrected σ̂ = %v", got)
	}
	if got := ad.Selectivity(875, 1000); math.Abs(got-0.125) > 0.02 {
		t.Fatalf("right-edge corrected σ̂ = %v", got)
	}
}

// zeroEstimator answers 0 for everything: the wrapper must pass the zero
// through (nothing to correct multiplicatively).
type zeroEstimator struct{}

func (zeroEstimator) Selectivity(a, b float64) float64 { return 0 }
func (zeroEstimator) Name() string                     { return "zero" }

func TestZeroBaseEstimate(t *testing.T) {
	ad, err := New(zeroEstimator{}, 0, 1000, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ad.Observe(100, 200, 0.5) // unlearnable: base estimate is 0
	if ad.Observed() != 0 {
		t.Fatal("zero-base feedback should be ignored")
	}
	if ad.Selectivity(100, 200) != 0 {
		t.Fatal("zero base should stay zero")
	}
}
