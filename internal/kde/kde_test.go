package kde

import (
	"math"
	"testing"
	"testing/quick"

	"selest/internal/kernel"
	"selest/internal/xmath"
	"selest/internal/xrand"
)

func uniformSamples(t testing.TB, n int, lo, hi float64, seed uint64) []float64 {
	t.Helper()
	r := xrand.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.UniformRange(lo, hi)
	}
	return xs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{Bandwidth: 1}); err == nil {
		t.Fatal("empty samples should error")
	}
	if _, err := New([]float64{1}, Config{Bandwidth: 0}); err == nil {
		t.Fatal("zero bandwidth should error")
	}
	if _, err := New([]float64{1}, Config{Bandwidth: math.NaN()}); err == nil {
		t.Fatal("NaN bandwidth should error")
	}
	if _, err := New([]float64{1}, Config{Bandwidth: 1, Boundary: BoundaryReflect}); err == nil {
		t.Fatal("boundary mode without domain should error")
	}
	if _, err := New([]float64{5}, Config{Bandwidth: 1, Boundary: BoundaryReflect, DomainLo: 0, DomainHi: 1}); err == nil {
		t.Fatal("samples outside domain should error")
	}
	if _, err := New([]float64{0.5}, Config{Bandwidth: 1, Kernel: kernel.Gaussian{}, Boundary: BoundaryKernels, DomainLo: 0, DomainHi: 1}); err == nil {
		t.Fatal("boundary kernels with non-Epanechnikov kernel should error")
	}
}

func TestSingleSampleSelectivity(t *testing.T) {
	// One sample at 0 with h=1: σ̂(−1,1) must be 1 (whole kernel), and
	// σ̂(0,1) must be 0.5 (half the kernel mass).
	e, err := New([]float64{0}, Config{Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Selectivity(-1, 1); !xmath.AlmostEqual(got, 1, 1e-12) {
		t.Fatalf("whole-kernel selectivity = %v, want 1", got)
	}
	if got := e.Selectivity(0, 1); !xmath.AlmostEqual(got, 0.5, 1e-12) {
		t.Fatalf("half-kernel selectivity = %v, want 0.5", got)
	}
	if got := e.Selectivity(5, 6); got != 0 {
		t.Fatalf("distant query = %v, want 0", got)
	}
	if got := e.Selectivity(1, -1); got != 0 {
		t.Fatalf("inverted query = %v, want 0", got)
	}
}

func TestFastPathMatchesLinear(t *testing.T) {
	// The O(log n + k) evaluation must agree with the paper's Θ(n)
	// Algorithm 1 on every query, for every kernel and boundary mode.
	samples := uniformSamples(t, 800, 0, 100, 1)
	r := xrand.New(2)
	for _, k := range kernel.All() {
		for _, mode := range []BoundaryMode{BoundaryNone, BoundaryReflect} {
			e, err := New(samples, Config{Kernel: k, Bandwidth: 3, Boundary: mode, DomainLo: 0, DomainHi: 100})
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 100; trial++ {
				a := r.UniformRange(-10, 105)
				b := a + r.Float64()*20
				fast := e.Selectivity(a, b)
				slow := e.SelectivityLinear(a, b)
				if !xmath.AlmostEqual(fast, slow, 1e-10) {
					t.Fatalf("%s/%s: fast %v != linear %v for Q(%v,%v)", k.Name(), mode, fast, slow, a, b)
				}
			}
		}
	}
}

func TestNarrowQuery(t *testing.T) {
	// Query much narrower than the bandwidth exercises the no-full-mass
	// branch of the fast path.
	samples := uniformSamples(t, 500, 0, 10, 3)
	e, err := New(samples, Config{Bandwidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	fast := e.Selectivity(5, 5.01)
	slow := e.SelectivityLinear(5, 5.01)
	if !xmath.AlmostEqual(fast, slow, 1e-12) {
		t.Fatalf("narrow query: fast %v != linear %v", fast, slow)
	}
	if fast <= 0 {
		t.Fatal("narrow interior query should have positive estimate")
	}
}

func TestSelectivityAccuracyUniform(t *testing.T) {
	// Interior 10% queries on uniform data should estimate ~0.1 closely.
	samples := uniformSamples(t, 2000, 0, 1000, 4)
	e, err := New(samples, Config{Bandwidth: 30, Boundary: BoundaryReflect, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Selectivity(450, 550)
	if math.Abs(got-0.1) > 0.02 {
		t.Fatalf("10%% query estimate = %v, want ~0.1", got)
	}
}

func TestDensityIntegratesToOne(t *testing.T) {
	samples := uniformSamples(t, 300, 0, 10, 5)
	for _, mode := range []BoundaryMode{BoundaryNone, BoundaryReflect, BoundaryKernels} {
		e, err := New(samples, Config{Bandwidth: 1, Boundary: mode, DomainLo: 0, DomainHi: 10})
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := -2.0, 12.0
		if mode != BoundaryNone {
			lo, hi = 0, 10
		}
		mass := xmath.Simpson(e.Density, lo, hi, 4000)
		// Reflection restores exactly 1; no treatment loses boundary mass
		// only if samples sit near the boundary (they do for uniform);
		// boundary kernels may exceed 1 slightly.
		switch mode {
		case BoundaryReflect:
			if !xmath.AlmostEqual(mass, 1, 1e-3) {
				t.Fatalf("reflect density mass = %v, want 1", mass)
			}
		case BoundaryNone:
			if !xmath.AlmostEqual(mass, 1, 1e-3) {
				t.Fatalf("untreated density over extended support = %v, want 1", mass)
			}
		case BoundaryKernels:
			if mass < 0.97 || mass > 1.05 {
				t.Fatalf("boundary-kernel density mass = %v, want ≈1", mass)
			}
		}
	}
}

func TestSelectivityMatchesDensityIntegral(t *testing.T) {
	// σ̂(a,b) must equal ∫_a^b f̂ for every mode (they are defined that way).
	samples := uniformSamples(t, 400, 0, 10, 6)
	for _, mode := range []BoundaryMode{BoundaryNone, BoundaryReflect, BoundaryKernels} {
		e, err := New(samples, Config{Bandwidth: 1.2, Boundary: mode, DomainLo: 0, DomainHi: 10})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range [][2]float64{{0, 1.5}, {0.2, 3}, {4, 6}, {8.1, 10}, {0.5, 9.5}} {
			want := xmath.Simpson(e.Density, q[0], q[1], 6000)
			got := e.Selectivity(q[0], q[1])
			if !xmath.AlmostEqual(got, want, 2e-3) {
				t.Fatalf("%s: σ̂(%v,%v) = %v, ∫f̂ = %v", mode, q[0], q[1], got, want)
			}
		}
	}
}

func TestBoundaryTreatmentReducesBoundaryError(t *testing.T) {
	// On uniform data the true selectivity of [0, w] is w/range. Without
	// treatment the kernel loses mass outside the boundary and
	// underestimates; both treatments must do better (paper Fig. 10).
	samples := uniformSamples(t, 2000, 0, 1000, 7)
	width := 20.0
	trueSel := width / 1000

	errFor := func(mode BoundaryMode) float64 {
		e, err := New(samples, Config{Bandwidth: 40, Boundary: mode, DomainLo: 0, DomainHi: 1000})
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(e.Selectivity(0, width) - trueSel)
	}

	none := errFor(BoundaryNone)
	refl := errFor(BoundaryReflect)
	bker := errFor(BoundaryKernels)
	if refl >= none {
		t.Fatalf("reflection error %v not below untreated %v", refl, none)
	}
	if bker >= none {
		t.Fatalf("boundary-kernel error %v not below untreated %v", bker, none)
	}
}

func TestReflectClipsQueriesToDomain(t *testing.T) {
	samples := uniformSamples(t, 500, 0, 10, 8)
	e, err := New(samples, Config{Bandwidth: 1, Boundary: BoundaryReflect, DomainLo: 0, DomainHi: 10})
	if err != nil {
		t.Fatal(err)
	}
	full := e.Selectivity(0, 10)
	ext := e.Selectivity(-100, 110)
	if !xmath.AlmostEqual(full, ext, 1e-12) {
		t.Fatalf("query past boundary must clip: %v vs %v", full, ext)
	}
	if !xmath.AlmostEqual(full, 1, 1e-9) {
		t.Fatalf("whole-domain reflect selectivity = %v, want 1", full)
	}
}

func TestBoundaryKernelsWholeDomain(t *testing.T) {
	samples := uniformSamples(t, 1000, 0, 10, 9)
	e, err := New(samples, Config{Bandwidth: 1, Boundary: BoundaryKernels, DomainLo: 0, DomainHi: 10})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Selectivity(0, 10)
	// Consistent-but-not-density: slight over-unity is possible before the
	// clamp; after clamping the result must be ~1.
	if got < 0.98 || got > 1 {
		t.Fatalf("whole-domain boundary-kernel selectivity = %v, want ≈1", got)
	}
}

func TestNarrowDomainStripsMeetInMiddle(t *testing.T) {
	// Domain narrower than 2h: strips must not overlap/double count.
	samples := []float64{0.2, 0.5, 0.8}
	e, err := New(samples, Config{Bandwidth: 2, Boundary: BoundaryKernels, DomainLo: 0, DomainHi: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Additivity is checked away from the [0,1] clamp (boundary kernels are
	// consistent but not a density, so the full-domain estimate may exceed
	// one and be clamped).
	whole := e.Selectivity(0.05, 0.9)
	parts := e.Selectivity(0.05, 0.4) + e.Selectivity(0.4, 0.9)
	if !xmath.AlmostEqual(whole, parts, 1e-9) {
		t.Fatalf("narrow-domain additivity broken: whole %v, parts %v", whole, parts)
	}
	if full := e.Selectivity(0, 1); full < 0.9 || full > 1 {
		t.Fatalf("narrow-domain whole selectivity = %v", full)
	}
}

func TestAccessors(t *testing.T) {
	e, err := New([]float64{1, 2, 3}, Config{Bandwidth: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if e.Bandwidth() != 0.5 || e.SampleSize() != 3 {
		t.Fatal("accessors wrong")
	}
	if e.Kernel().Name() != "epanechnikov" {
		t.Fatal("default kernel should be Epanechnikov")
	}
	if e.Mode() != BoundaryNone {
		t.Fatal("default mode should be none")
	}
	if e.Name() != "kernel(epanechnikov,none)" {
		t.Fatalf("Name = %q", e.Name())
	}
}

func TestBoundaryModeString(t *testing.T) {
	if BoundaryNone.String() != "none" || BoundaryReflect.String() != "reflect" ||
		BoundaryKernels.String() != "boundary-kernels" {
		t.Fatal("mode strings wrong")
	}
	if BoundaryMode(99).String() != "BoundaryMode(99)" {
		t.Fatal("unknown mode string wrong")
	}
}

// Property: selectivity is within [0,1], monotone under range widening,
// and additive over adjacent ranges (within clamp effects).
func TestQuickSelectivityInvariants(t *testing.T) {
	samples := uniformSamples(t, 300, 0, 100, 10)
	for _, mode := range []BoundaryMode{BoundaryNone, BoundaryReflect, BoundaryKernels} {
		e, err := New(samples, Config{Bandwidth: 5, Boundary: mode, DomainLo: 0, DomainHi: 100})
		if err != nil {
			t.Fatal(err)
		}
		prop := func(rawA, rawW uint8) bool {
			a := float64(rawA) / 255 * 90
			w := float64(rawW) / 255 * 10
			s := e.Selectivity(a, a+w)
			wide := e.Selectivity(a-1, a+w+1)
			return s >= 0 && s <= 1 && wide >= s-1e-12
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
	}
}

// Property: for BoundaryNone and symmetric data, σ̂ is symmetric under
// mirroring the query.
func TestQuickSymmetry(t *testing.T) {
	// Symmetric sample set around 0.
	base := uniformSamples(t, 200, 0, 50, 11)
	samples := make([]float64, 0, 400)
	for _, x := range base {
		samples = append(samples, x, -x)
	}
	e, err := New(samples, Config{Bandwidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(rawA, rawW uint8) bool {
		a := float64(rawA)/255*40 - 20
		w := float64(rawW) / 255 * 15
		left := e.Selectivity(a, a+w)
		right := e.Selectivity(-a-w, -a)
		return xmath.AlmostEqual(left, right, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
