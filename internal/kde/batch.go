package kde

// Batch evaluation: answer many range queries against one estimator with
// shared index searches. The per-query moment path (moments.go) spends its
// time in four binary searches; a batch sorts the distinct query edges and
// sweeps them in ascending order, resuming every search from the previous
// edge's position with galloping probes. Q queries against n samples cost
// O(Q log Q + Q + n) cursor work in the worst case instead of
// O(Q log n) independent searches — and the evaluation per edge is the
// same O(1) closed form, so results are bit-identical to Selectivity.

import (
	"math"
	"sort"
	"sync"

	"selest/internal/telemetry"
)

// Range is one selectivity query [A, B] for the batch API.
type Range struct {
	A, B float64
}

// batchEdge is one query endpoint in the shared sweep.
type batchEdge struct {
	y    float64 // edge value (after domain clipping)
	qi   int32   // index of the owning query
	sign int8    // +1 for the upper edge (adds F), −1 for the lower
}

// batchScratch is the reusable working set of one batch evaluation. It
// implements sort.Interface over its edges so sorting goes through the
// pooled pointer — no per-call closure or interface-boxing allocation.
type batchScratch struct {
	edges []batchEdge
}

func (s *batchScratch) Len() int           { return len(s.edges) }
func (s *batchScratch) Less(i, j int) bool { return s.edges[i].y < s.edges[j].y }
func (s *batchScratch) Swap(i, j int)      { s.edges[i], s.edges[j] = s.edges[j], s.edges[i] }

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// SelectivityBatch answers every query and returns the estimates in input
// order. See SelectivityBatchInto for the evaluation strategy.
func (e *Estimator) SelectivityBatch(qs []Range) []float64 {
	return e.SelectivityBatchInto(make([]float64, 0, len(qs)), qs)
}

// SelectivityBatchInto is SelectivityBatch writing into dst (reallocated
// only when its capacity is insufficient), for allocation-free steady-state
// serving loops. Each result equals the corresponding Selectivity call
// exactly.
//
// The shared sweep applies to the prefix-moment path of the plain and
// reflected boundary modes. Boundary-kernel estimators and non-Epanechnikov
// fallbacks answer per query — each already O(log n) — so the API is
// uniform across configurations.
func (e *Estimator) SelectivityBatchInto(dst []float64, qs []Range) []float64 {
	if cap(dst) < len(qs) {
		dst = make([]float64, len(qs))
	} else {
		dst = dst[:len(qs)]
	}
	if telemetry.Enabled() {
		kdeBatchCalls.Inc()
		kdeBatchQueries.Add(int64(len(qs)))
	}
	if len(qs) == 0 {
		return dst
	}
	if e.moments == nil || e.mode == BoundaryKernels {
		for i, q := range qs {
			dst[i] = e.Selectivity(q.A, q.B)
		}
		return dst
	}

	scratch := batchPool.Get().(*batchScratch)
	defer batchPool.Put(scratch)
	edges := scratch.edges[:0]
	for i, q := range qs {
		a, b := q.A, q.B
		if math.IsNaN(a) || math.IsNaN(b) || b < a {
			dst[i] = 0
			continue
		}
		if e.mode == BoundaryReflect {
			a = math.Max(a, e.lo)
			b = math.Min(b, e.hi)
			if b < a {
				dst[i] = 0
				continue
			}
		}
		dst[i] = math.NaN() // marks "accumulating" until the sweep fills it
		edges = append(edges,
			batchEdge{y: a, qi: int32(i), sign: -1},
			batchEdge{y: b, qi: int32(i), sign: +1},
		)
	}
	scratch.edges = edges
	sort.Sort(scratch)
	edges = scratch.edges

	// Sweep: resume the window cursors of each moment index monotonically.
	type cursor struct{ l, r int }
	var cSorted, cRefl cursor
	prevY := math.Inf(-1)
	prevF := 0.0
	for _, ed := range edges {
		F := prevF
		if ed.y != prevY {
			cSorted.l = advanceGE(e.moments.xs, cSorted.l, ed.y-e.h)
			cSorted.r = advanceGT(e.moments.xs, cSorted.r, ed.y+e.h)
			F = e.moments.windowSum(cSorted.l, cSorted.r, ed.y, e.h)
			if e.reflMoments != nil {
				cRefl.l = advanceGE(e.reflMoments.xs, cRefl.l, ed.y-e.h)
				cRefl.r = advanceGT(e.reflMoments.xs, cRefl.r, ed.y+e.h)
				F += e.reflMoments.windowSum(cRefl.l, cRefl.r, ed.y, e.h)
			}
			prevY, prevF = ed.y, F
		}
		if ed.sign > 0 {
			dst[ed.qi] += F
		} else {
			// The lower edge sorts (weakly) before the upper, so the NaN
			// marker is replaced here and the upper edge accumulates on top,
			// reproducing F(b) − F(a) with the exact operation order of the
			// single-query path.
			dst[ed.qi] = -F
		}
	}
	if telemetry.Enabled() {
		kdeQueries.Add(int64(len(edges) / 2))
		kdeMomentQueries.Add(int64(len(edges) / 2))
	}

	// Normalise and clamp with the exact operations of Selectivity, so each
	// batch result is bit-identical to the single-query answer.
	for i := range dst {
		s := dst[i] / float64(e.n)
		if s < 0 {
			s = 0
		} else if s > 1 {
			s = 1
		}
		dst[i] = s
	}
	return dst
}
