package kde

// This file implements the prefix-moment evaluation path: for the
// Epanechnikov kernel the primitive is the cubic polynomial
//
//	CDF(t) = ½ + ¼(3t − t³),  t ∈ [−1, 1]
//
// so the edge sum Σᵢ CDF((y − Xᵢ)/h) over any contiguous sorted-index
// range collapses to a closed form in the prefix moments Σ1, ΣXᵢ, ΣXᵢ²,
// ΣXᵢ³: with u_i = (y − Xᵢ)/h and m samples in the window,
//
//	Σ u_i  = (m·y − ΣXᵢ)/h
//	Σ u_i³ = (m·y³ − 3y²·ΣXᵢ + 3y·ΣXᵢ² − ΣXᵢ³)/h³
//
// which turns a range-selectivity query into a handful of binary searches
// with no per-sample loop at all — O(log n) regardless of how many samples
// the query edges overlap. This is the same precomputation trick the
// GENHIST/STHoles-era summaries use to make query time independent of n.
//
// Numerics: the naive expansion is catastrophically cancellative on wide
// integer domains — for X ~ 2^p the terms are of order m·X³ while the
// result is of order m·h³. Two defences are layered here:
//
//  1. Centering: moments are taken of y = X − c with c the midpoint of the
//     sample hull, halving the magnitude of every power.
//  2. Compensation: prefix sums are accumulated and combined in
//     double-double ("twofloat") arithmetic built from error-free
//     transforms (Knuth two-sum, FMA two-product). Each prefix entry
//     carries a Kahan-style compensation limb, so range differences and
//     the polynomial recombination retain ~106 bits through the
//     cancellation, leaving ≪1e−9 absolute error on the selectivity even
//     at n = 10⁶ on [0, 2^31) domains.
//
// Magnitudes whose cubes would overflow float64 (or NaN inputs) disable
// the index at construction; the estimator then falls back to the
// edge-scan path, so correctness never depends on the moment form.

import (
	"math"
	"sort"
)

// ---------------------------------------------------------------------------
// Double-double helpers (error-free transforms).

// dd is an unevaluated sum hi + lo with |lo| ≤ ½ulp(hi): a ~106-bit float.
type dd struct{ hi, lo float64 }

// twoSum returns a + b exactly as a dd (Knuth's branch-free TwoSum).
func twoSum(a, b float64) dd {
	s := a + b
	bb := s - a
	return dd{s, (a - (s - bb)) + (b - bb)}
}

// twoDiff returns a − b exactly as a dd.
func twoDiff(a, b float64) dd {
	s := a - b
	bb := s - a
	return dd{s, (a - (s - bb)) - (b + bb)}
}

// fastTwoSum renormalises a + b assuming |a| ≥ |b| (or a == 0 ⇒ b == 0).
func fastTwoSum(a, b float64) dd {
	s := a + b
	return dd{s, b - (s - a)}
}

// add returns x + y in dd arithmetic.
func (x dd) add(y dd) dd {
	s := twoSum(x.hi, y.hi)
	return fastTwoSum(s.hi, s.lo+x.lo+y.lo)
}

// sub returns x − y in dd arithmetic.
func (x dd) sub(y dd) dd { return x.add(dd{-y.hi, -y.lo}) }

// mul returns x · y in dd arithmetic, using FMA for the exact product.
func (x dd) mul(y dd) dd {
	p := x.hi * y.hi
	e := math.FMA(x.hi, y.hi, -p)
	e += x.hi*y.lo + x.lo*y.hi
	return fastTwoSum(p, e)
}

// mulF returns x · b for a plain float64 b.
func (x dd) mulF(b float64) dd {
	p := x.hi * b
	e := math.FMA(x.hi, b, -p)
	e += x.lo * b
	return fastTwoSum(p, e)
}

// val rounds the dd to the nearest float64.
func (x dd) val() float64 { return x.hi + x.lo }

// ---------------------------------------------------------------------------
// The moment index.

// maxMomentMagnitude bounds |X − c| so that n·|X−c|³ stays far from
// overflow (1e90³·1e9 ≈ 1e279 < MaxFloat64).
const maxMomentMagnitude = 1e90

// momentIndex holds centered, compensated prefix moments over one sorted
// sample slice, answering Σᵢ CDF_epa((y − Xᵢ)/h) over all samples in
// O(log n). It is immutable after construction and therefore safe to
// share: a FitContext builds one index per sample set and every estimator
// fitted from that context aliases it. Domain-dependent state (the
// boundary-strip log prefixes) lives in the per-estimator stripLogs.
type momentIndex struct {
	xs []float64 // the sorted samples (aliased, not owned)
	c  float64   // centering constant: midpoint of the sample hull
	// p1..p3: prefix sums of (x−c)^k, length len(xs)+1. p0 is the index
	// itself (the samples are unweighted).
	p1, p2, p3 []dd
}

// stripLogs holds the boundary-strip log prefixes for one (domain,
// sample-set) pair: prefix sums of ln(x − lo) and ln(hi − x), built only
// for BoundaryKernels mode (the strip closed form needs Σ ln s over the
// samples whose strip integral is clipped at v = s). Entries for x ≤ lo
// (resp. x ≥ hi) are 0 — such samples never fall inside a clipped group,
// so the substitution never reaches a range sum. The prefixes depend on
// the estimator's domain, so they are owned by the Estimator rather than
// the (shareable) momentIndex.
type stripLogs struct {
	lnLo, lnHi []dd
}

// newMomentIndex builds the index, or returns nil when the closed form
// cannot be trusted: empty input, NaN/±Inf samples, or magnitudes whose
// cubes approach overflow.
func newMomentIndex(xs []float64) *momentIndex {
	n := len(xs)
	if n == 0 {
		return nil
	}
	c := 0.5*xs[0] + 0.5*xs[n-1]
	if math.IsNaN(c) || math.IsInf(c, 0) {
		return nil
	}
	if math.Max(math.Abs(xs[0]-c), math.Abs(xs[n-1]-c)) > maxMomentMagnitude {
		return nil
	}
	m := &momentIndex{
		xs: xs,
		c:  c,
		p1: make([]dd, n+1),
		p2: make([]dd, n+1),
		p3: make([]dd, n+1),
	}
	var s1, s2, s3 dd
	for i, x := range xs {
		y := twoDiff(x, c) // exact
		y2 := y.mul(y)
		s1 = s1.add(y)
		s2 = s2.add(y2)
		s3 = s3.add(y2.mul(y))
		m.p1[i+1] = s1
		m.p2[i+1] = s2
		m.p3[i+1] = s3
	}
	return m
}

// newStripLogs builds the boundary-strip log prefixes for the domain
// [lo, hi] over the sorted samples (BoundaryKernels mode only).
func newStripLogs(xs []float64, lo, hi float64) *stripLogs {
	n := len(xs)
	s := &stripLogs{
		lnLo: make([]dd, n+1),
		lnHi: make([]dd, n+1),
	}
	var sLo, sHi dd
	for i, x := range xs {
		if x > lo {
			sLo = sLo.add(dd{math.Log(x - lo), 0})
		}
		if x < hi {
			sHi = sHi.add(dd{math.Log(hi - x), 0})
		}
		s.lnLo[i+1] = sLo
		s.lnHi[i+1] = sHi
	}
	return s
}

// window returns the index range [l, r) of samples inside the kernel
// window (y−h, y+h]... more precisely l is the first index with x ≥ y−h
// and r the first with x > y+h, so [0, l) are full contributors (u ≥ 1,
// CDF = 1) and [r, n) contribute nothing (u ≤ −1). Samples exactly at the
// window edges land in the window, where the cubic evaluates to exactly 0
// or 1 — both decompositions agree.
func (m *momentIndex) window(y, h float64) (l, r int) {
	xs := m.xs
	l = sort.SearchFloat64s(xs, y-h)
	r = sort.Search(len(xs), func(i int) bool { return xs[i] > y+h })
	return l, r
}

// cdfSum returns F(y) = Σᵢ CDF((y − Xᵢ)/h) over every sample, in O(log n).
// A range query is then F(b) − F(a).
func (m *momentIndex) cdfSum(y, h float64) float64 {
	l, r := m.window(y, h)
	return m.windowSum(l, r, y, h)
}

// windowSum evaluates F(y) given the precomputed window [l, r): the l full
// contributors below the window plus the moment closed form inside it.
func (m *momentIndex) windowSum(l, r int, y, h float64) float64 {
	k := r - l
	if k == 0 {
		return float64(l)
	}
	kf := float64(k)
	s1 := m.p1[r].sub(m.p1[l])
	s2 := m.p2[r].sub(m.p2[l])
	s3 := m.p3[r].sub(m.p3[l])
	z := twoDiff(y, m.c)
	// Σu = (k·z − S1)/h.
	sumU := z.mulF(kf).sub(s1)
	// Σu³ = (k·z³ − 3z²·S1 + 3z·S2 − S3)/h³.
	z2 := z.mul(z)
	sumU3 := z2.mul(z).mulF(kf).
		sub(z2.mul(s1).mulF(3)).
		add(z.mul(s2).mulF(3)).
		sub(s3)
	ih := 1 / h
	// Σ CDF(u) = k/2 + ¾Σu − ¼Σu³.
	return float64(l) + 0.5*kf + 0.25*ih*(3*sumU.val()-sumU3.val()*ih*ih)
}

// momentCdf evaluates the in-window part of the CDF sum over [l, r) — the
// moment closed form alone, without the full-contributor count windowSum
// adds below the window. Callers must guarantee every sample in [l, r)
// lies inside the kernel window of (y, h). It exists as a separate
// function (rather than a factored windowSum) so windowSum's operation
// order — and therefore the bit-identity pins on the existing query
// paths — stays untouched.
func (m *momentIndex) momentCdf(l, r int, y, h float64) float64 {
	k := r - l
	if k == 0 {
		return 0
	}
	kf := float64(k)
	s1 := m.p1[r].sub(m.p1[l])
	s2 := m.p2[r].sub(m.p2[l])
	s3 := m.p3[r].sub(m.p3[l])
	z := twoDiff(y, m.c)
	sumU := z.mulF(kf).sub(s1)
	z2 := z.mul(z)
	sumU3 := z2.mul(z).mulF(kf).
		sub(z2.mul(s1).mulF(3)).
		add(z.mul(s2).mulF(3)).
		sub(s3)
	ih := 1 / h
	return 0.5*kf + 0.25*ih*(3*sumU.val()-sumU3.val()*ih*ih)
}

// rangeCdfSum returns Σᵢ CDF((y − Xᵢ)/h) over the sorted-index range
// [lo, hi) only, in O(log n): the kernel window is clipped to the range,
// samples of the range below the window count 1 each (u ≥ 1), samples
// above it count 0, and the in-window remainder takes the moment closed
// form. This is the building block of the beta-kernel estimator, whose
// interior samples form one contiguous index range between the two
// weighted boundary blocks.
func (m *momentIndex) rangeCdfSum(lo, hi int, y, h float64) float64 {
	if hi <= lo {
		return 0
	}
	wl, wr := m.window(y, h)
	if wl > hi {
		wl = hi
	}
	if wl < lo {
		wl = lo
	}
	if wr > hi {
		wr = hi
	}
	s := float64(wl - lo)
	if wr > wl {
		s += m.momentCdf(wl, wr, y, h)
	}
	return s
}

// densitySum evaluates Σᵢ K((x − Xᵢ)/h) over the window [l, r) through
// the centered prefix moments: for the Epanechnikov kernel
//
//	Σ K(uᵢ) = ¾·(k − Σuᵢ²),  Σuᵢ² = (k·z² − 2z·S1 + S2)/h²,  z = x − c,
//
// so one density evaluation is O(1) once the window is known. This is the
// closed form behind DensityGrid: a pilot-density sweep over m grid points
// costs O(m) closed-form evaluations plus monotone cursor advances instead
// of m independent O(log n + k) edge scans.
func (m *momentIndex) densitySum(l, r int, x, h float64) float64 {
	k := r - l
	if k == 0 {
		return 0
	}
	kf := float64(k)
	s1 := m.p1[r].sub(m.p1[l])
	s2 := m.p2[r].sub(m.p2[l])
	z := twoDiff(x, m.c)
	// Σ(x − Xᵢ)² = k·z² − 2z·S1 + S2.
	q := z.mul(z).mulF(kf).sub(z.mul(s1).mulF(2)).add(s2)
	ih := 1 / h
	return 0.75 * (kf - q.val()*ih*ih)
}

// ---------------------------------------------------------------------------
// Boundary-strip closed forms.
//
// The Simonoff–Dong strip contribution of one sample (kernel.
// BoundaryStripIntegral) is G(v₂; s) − G(v₁(s); s) with
//
//	G(v; s) = −3 ln v − (6 + 12s)/v + (6s + 3s²)/v²
//
// where v₂ = 1 + min(u₂, 1) is sample-independent while the lower limit
// clips at v₁ = 1 + max(u₁, 0, s−1). Splitting the samples at
// s* = 1 + max(u₁, 0) gives two groups:
//
//	group A (s ≤ s*): lower limit 1 + max(u₁,0) — G is a degree-2
//	  polynomial in s, so ΣG collapses to the moment form;
//	group B (s* < s < 1 + min(u₂,1)): lower limit v = s, where
//	  G(s; s) = −3 ln s − 9 — Σ ln s comes from the log prefixes.
//
// Samples with s ≥ 1 + min(u₂,1) contribute zero and are excluded by the
// binary searches. Both groups are contiguous index ranges because s is
// monotone in the sorted order (increasing from the left boundary,
// decreasing from the right).

// stripGSum returns Σ G(v; sᵢ) over index range [l, r), where
// sᵢ = (Xᵢ − lo)/h when left, (hi − Xᵢ)/h otherwise.
func (e *Estimator) stripGSum(m *momentIndex, l, r int, v float64, left bool) float64 {
	k := r - l
	if k <= 0 {
		return 0
	}
	kf := float64(k)
	s1 := m.p1[r].sub(m.p1[l])
	s2 := m.p2[r].sub(m.p2[l])
	// Unscaled offset sums T1 = Σ(X−lo), T2 = Σ(X−lo)² (mirrored for the
	// right strip), from the centered moments.
	var t1, t2 dd
	if left {
		d := twoDiff(m.c, e.lo)
		t1 = s1.add(d.mulF(kf))
		t2 = s2.add(d.mul(s1).mulF(2)).add(d.mul(d).mulF(kf))
	} else {
		d := twoDiff(e.hi, m.c)
		t1 = d.mulF(kf).sub(s1)
		t2 = d.mul(d).mulF(kf).sub(d.mul(s1).mulF(2)).add(s2)
	}
	iv := 1 / v
	ihs := 1 / e.h
	// ΣG = k(−3 ln v − 6/v) + Σs·(−12/v + 6/v²) + Σs²·(3/v²).
	return kf*(-3*math.Log(v)-6*iv) +
		t1.val()*ihs*iv*(6*iv-12) +
		t2.val()*ihs*ihs*(3*iv*iv)
}

// stripLogSum returns Σ (−3 ln sᵢ − 9) over index range [l, r) — the
// lower-limit term of group B — using the estimator's log prefixes:
// Σ ln s = Σ ln(X−lo) − k·ln h (left; mirrored on the right).
func (e *Estimator) stripLogSum(l, r int, left bool) float64 {
	k := r - l
	if k <= 0 {
		return 0
	}
	var lnSum dd
	if left {
		lnSum = e.strips.lnLo[r].sub(e.strips.lnLo[l])
	} else {
		lnSum = e.strips.lnHi[r].sub(e.strips.lnHi[l])
	}
	return -3*(lnSum.val()-float64(k)*math.Log(e.h)) - 9*float64(k)
}

// stripSumMoment returns Σᵢ BoundaryStripIntegral(sᵢ, u1, u2) over all
// samples in O(log n), for the left (left=true) or right strip.
func (e *Estimator) stripSumMoment(u1, u2 float64, left bool) float64 {
	lou := math.Max(u1, 0)
	hiu := math.Min(u2, 1)
	if hiu <= lou {
		return 0
	}
	m := e.moments
	xs := m.xs
	n := len(xs)
	v1, v2 := 1+lou, 1+hiu
	var iA, iB int
	if left {
		// Group A: s ≤ 1+lou ⇔ X ≤ lo + (1+lou)h → [0, iA).
		// Group B: 1+lou < s < 1+hiu → [iA, iB).
		tA := e.lo + v1*e.h
		tB := e.lo + v2*e.h
		iA = sort.Search(n, func(i int) bool { return xs[i] > tA })
		iB = sort.Search(n, func(i int) bool { return xs[i] >= tB })
		if iB < iA {
			iB = iA // threshold collapse under rounding
		}
		return e.stripGSum(m, 0, iB, v2, true) -
			e.stripGSum(m, 0, iA, v1, true) -
			e.stripLogSum(iA, iB, true)
	}
	// Right strip: s = (hi − X)/h decreases with the index.
	// Group A: s ≤ 1+lou ⇔ X ≥ hi − (1+lou)h → [iA, n).
	// Group B: 1+lou < s < 1+hiu → [iB, iA).
	tA := e.hi - v1*e.h
	tB := e.hi - v2*e.h
	iA = sort.SearchFloat64s(xs, tA)
	iB = sort.Search(n, func(i int) bool { return xs[i] > tB })
	if iB > iA {
		iB = iA
	}
	return e.stripGSum(m, iB, n, v2, false) -
		e.stripGSum(m, iA, n, v1, false) -
		e.stripLogSum(iB, iA, false)
}

// ---------------------------------------------------------------------------
// Shared-search helpers for the batch API: resume a lower/upper bound from
// a previous cursor position with galloping (exponential) probes, so a
// sorted edge sweep costs O(log gap) per edge instead of O(log n).

// advanceGE returns the first index ≥ from with xs[i] ≥ v (the resumed
// analogue of sort.SearchFloat64s).
func advanceGE(xs []float64, from int, v float64) int {
	n := len(xs)
	if from >= n || xs[from] >= v {
		return from
	}
	// Gallop: find a bracket (lo, hi] with xs[lo] < v ≤ xs[hi].
	lo, step := from, 1
	for lo+step < n && xs[lo+step] < v {
		lo += step
		step <<= 1
	}
	hi := lo + step
	if hi > n {
		hi = n
	}
	return lo + sort.SearchFloat64s(xs[lo:hi], v)
}

// advanceGT returns the first index ≥ from with xs[i] > v.
func advanceGT(xs []float64, from int, v float64) int {
	n := len(xs)
	if from >= n || xs[from] > v {
		return from
	}
	lo, step := from, 1
	for lo+step < n && xs[lo+step] <= v {
		lo += step
		step <<= 1
	}
	hi := lo + step
	if hi > n {
		hi = n
	}
	return lo + sort.Search(hi-lo, func(i int) bool { return xs[lo+i] > v })
}
