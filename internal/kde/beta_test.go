package kde

// Tests for the beta-kernel estimator: the O(log n) weighted closed forms
// must match the Θ(n) reference within momentTol, the density must
// integrate to exactly one over the domain (the cut-and-normalize
// construction's defining property), selectivities must stay in [0, 1] on
// adversarial input, context fits must be bit-identical to from-scratch
// fits, and the query path must not allocate.

import (
	"math"
	"testing"

	"selest/internal/xrand"
)

// betaFracs sweeps the bandwidth as a fraction of the domain span; 0.9
// exercises the span/2 clamp.
var betaFracs = []float64{0.003, 0.04, 0.3, 0.9}

func TestBetaMatchesLinear(t *testing.T) {
	for _, sc := range momentCorpus(t) {
		r := xrand.New(11)
		span := sc.hi - sc.lo
		for _, hFrac := range betaFracs {
			h := hFrac * span
			if h <= 0 {
				h = 1
			}
			e, err := NewBeta(sc.samples, BetaConfig{Bandwidth: h, DomainLo: sc.lo, DomainHi: sc.hi})
			if err != nil {
				t.Fatalf("%s/h=%v: %v", sc.name, h, err)
			}
			if e.moments == nil {
				t.Fatalf("%s: moment index unexpectedly disabled", sc.name)
			}
			for _, q := range queriesFor(r, sc.lo, sc.hi, e.Bandwidth(), 60) {
				fast := e.Selectivity(q.A, q.B)
				lin := e.SelectivityLinear(q.A, q.B)
				if math.Abs(fast-lin) > momentTol {
					t.Fatalf("%s/h=%v: moment %v vs linear %v for Q(%v,%v)",
						sc.name, h, fast, lin, q.A, q.B)
				}
				if fast < 0 || fast > 1 || math.IsNaN(fast) {
					t.Fatalf("%s/h=%v: selectivity %v outside [0,1] for Q(%v,%v)",
						sc.name, h, fast, q.A, q.B)
				}
			}
		}
	}
}

// TestBetaMassUnity pins the construction's defining property: the
// density integrates to exactly 1 over the domain — the whole-domain
// selectivity, evaluated unclamped through the closed forms, is 1 within
// momentTol. Partitions of the domain must add back to the same total.
func TestBetaMassUnity(t *testing.T) {
	for _, sc := range momentCorpus(t) {
		span := sc.hi - sc.lo
		for _, hFrac := range betaFracs {
			h := hFrac * span
			if h <= 0 {
				h = 1
			}
			e, err := NewBeta(sc.samples, BetaConfig{Bandwidth: h, DomainLo: sc.lo, DomainHi: sc.hi})
			if err != nil {
				t.Fatalf("%s/h=%v: %v", sc.name, h, err)
			}
			mass := e.SelectivityUnclamped(sc.lo, sc.hi)
			if math.Abs(mass-1) > momentTol {
				t.Fatalf("%s/h=%v: whole-domain mass %v, want 1±%v", sc.name, h, mass, momentTol)
			}
			// Beyond-domain queries see the same (clipped) mass.
			if wide := e.SelectivityUnclamped(sc.lo-span-1, sc.hi+span+1); math.Abs(wide-1) > momentTol {
				t.Fatalf("%s/h=%v: hull-covering mass %v, want 1", sc.name, h, wide)
			}
			// A 7-segment partition must add back to the whole.
			const parts = 7
			sum := 0.0
			for i := 0; i < parts; i++ {
				a := sc.lo + span*float64(i)/parts
				b := sc.lo + span*float64(i+1)/parts
				sum += e.SelectivityUnclamped(a, b)
			}
			if math.Abs(sum-mass) > momentTol {
				t.Fatalf("%s/h=%v: partition sum %v vs whole %v", sc.name, h, sum, mass)
			}
		}
	}
}

// TestBetaDensity pins density sanity: non-negative everywhere, zero
// outside the domain, the moment path matching the Θ(n) scan, and the
// trapezoid integral over a fine grid close to 1 (the exact statement is
// TestBetaMassUnity; the grid integral checks Density itself).
func TestBetaDensity(t *testing.T) {
	r := xrand.New(23)
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = math.Floor(r.Float64() * 1e6)
	}
	e, err := NewBeta(xs, BetaConfig{Bandwidth: 3e4, DomainLo: 0, DomainHi: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	const m = 2001
	grid := e.DensityGrid(0, 1e6, m)
	dx := 1e6 / float64(m-1)
	integral := 0.0
	for i, d := range grid {
		x := float64(i) * dx
		if d < 0 {
			t.Fatalf("negative density %v at %v", d, x)
		}
		if lin := e.densityLinear(x) / (float64(e.n) * e.h); math.Abs(d-lin) > momentTol {
			t.Fatalf("density moment %v vs linear %v at %v", d, lin, x)
		}
		w := dx
		if i == 0 || i == m-1 {
			w = dx / 2
		}
		integral += d * w
	}
	if math.Abs(integral-1) > 1e-3 {
		t.Fatalf("trapezoid integral %v, want ≈1", integral)
	}
	if e.Density(-1) != 0 || e.Density(1e6+1) != 0 || e.Density(math.NaN()) != 0 {
		t.Fatal("density outside the domain must be 0")
	}
}

// TestBetaAdversarial covers the degenerate corners: constant data, n=1,
// massive tie blocks, bandwidth clamping, and the typed construction
// failures.
func TestBetaAdversarial(t *testing.T) {
	// Constant data, defaulted domain → point mass.
	e, err := NewBeta([]float64{7, 7, 7, 7}, BetaConfig{Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Selectivity(6, 8); got != 1 {
		t.Fatalf("point mass covering query: got %v, want 1", got)
	}
	if got := e.Selectivity(7, 7); got != 1 {
		t.Fatalf("point query on the mass: got %v, want 1", got)
	}
	if got := e.Selectivity(8, 9); got != 0 {
		t.Fatalf("point mass missing query: got %v, want 0", got)
	}
	if got := e.Density(7); got != 0 {
		t.Fatalf("point mass has no density, got %v", got)
	}

	// n = 1 with a proper domain: a single renormalised kernel.
	e, err = NewBeta([]float64{5}, BetaConfig{Bandwidth: 2, DomainLo: 0, DomainHi: 10})
	if err != nil {
		t.Fatal(err)
	}
	if mass := e.SelectivityUnclamped(0, 10); math.Abs(mass-1) > momentTol {
		t.Fatalf("n=1 mass %v, want 1", mass)
	}

	// Ties at the boundary: half the samples at the domain edge.
	xs := []float64{0, 0, 0, 0, 0, 3, 5, 9, 10, 10}
	e, err = NewBeta(xs, BetaConfig{Bandwidth: 4, DomainLo: 0, DomainHi: 10})
	if err != nil {
		t.Fatal(err)
	}
	if mass := e.SelectivityUnclamped(0, 10); math.Abs(mass-1) > momentTol {
		t.Fatalf("tied-boundary mass %v, want 1", mass)
	}

	// Bandwidth wider than the domain is clamped to span/2.
	if e.Bandwidth() != 4 {
		t.Fatalf("bandwidth %v, want 4", e.Bandwidth())
	}
	e, err = NewBeta(xs, BetaConfig{Bandwidth: 100, DomainLo: 0, DomainHi: 10})
	if err != nil {
		t.Fatal(err)
	}
	if e.Bandwidth() != 5 {
		t.Fatalf("clamped bandwidth %v, want 5", e.Bandwidth())
	}
	if mass := e.SelectivityUnclamped(0, 10); math.Abs(mass-1) > momentTol {
		t.Fatalf("clamped-bandwidth mass %v, want 1", mass)
	}

	// Construction failures: empty samples, bad bandwidth, samples outside
	// the domain, NaN samples, NaN domain.
	if _, err := NewBeta(nil, BetaConfig{Bandwidth: 1}); err == nil {
		t.Fatal("empty sample set must fail")
	}
	for _, h := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewBeta([]float64{1, 2}, BetaConfig{Bandwidth: h}); err == nil {
			t.Fatalf("bandwidth %v must fail", h)
		}
	}
	if _, err := NewBeta([]float64{1, 20}, BetaConfig{Bandwidth: 1, DomainLo: 0, DomainHi: 10}); err == nil {
		t.Fatal("samples outside the domain must fail")
	}
	if _, err := NewBeta([]float64{1, math.NaN(), 3}, BetaConfig{Bandwidth: 1, DomainLo: 0, DomainHi: 10}); err == nil {
		t.Fatal("NaN sample must fail")
	}
	if _, err := NewBeta([]float64{1, 2}, BetaConfig{Bandwidth: 1, DomainLo: math.NaN(), DomainHi: 10}); err == nil {
		t.Fatal("NaN domain must fail")
	}
	if _, err := NewBeta([]float64{1, 2}, BetaConfig{Bandwidth: 1, DomainLo: 10, DomainHi: 0}); err == nil {
		t.Fatal("inverted domain must fail")
	}
}

// TestBetaFallbackOnExtremeMagnitude: magnitudes the moment index refuses
// must still be served, through the weighted linear path, with mass
// conservation intact.
func TestBetaFallbackOnExtremeMagnitude(t *testing.T) {
	xs := []float64{-2e100, -1e100, 0, 1e100, 2e100}
	e, err := NewBeta(xs, BetaConfig{Bandwidth: 1e100})
	if err != nil {
		t.Fatal(err)
	}
	if e.moments != nil {
		t.Fatal("moment index should be disabled at 1e100 magnitudes")
	}
	if mass := e.SelectivityUnclamped(-2e100, 2e100); math.Abs(mass-1) > momentTol {
		t.Fatalf("fallback mass %v, want 1", mass)
	}
	if s := e.Selectivity(-1e100, 1e100); s <= 0 || s >= 1 {
		t.Fatalf("interior query %v outside (0,1)", s)
	}
}

// TestBetaContextBitIdentical: fitting through a FitContext must give
// bit-identical results to the from-scratch fit — same sorted data, same
// moment index, same closed forms.
func TestBetaContextBitIdentical(t *testing.T) {
	for _, sc := range momentCorpus(t) {
		span := sc.hi - sc.lo
		h := 0.05 * span
		if h <= 0 {
			h = 1
		}
		cfg := BetaConfig{Bandwidth: h, DomainLo: sc.lo, DomainHi: sc.hi}
		fresh, err := NewBeta(sc.samples, cfg)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		ctx, err := NewFitContext(sc.samples)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		shared, err := ctx.NewBetaEstimator(cfg)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		r := xrand.New(31)
		for _, q := range queriesFor(r, sc.lo, sc.hi, h, 80) {
			if a, b := fresh.Selectivity(q.A, q.B), shared.Selectivity(q.A, q.B); a != b {
				t.Fatalf("%s: context fit diverges: %v vs %v for Q(%v,%v)", sc.name, a, b, q.A, q.B)
			}
		}
		for i := 0; i <= 32; i++ {
			x := sc.lo + span*float64(i)/32
			if a, b := fresh.Density(x), shared.Density(x); a != b {
				t.Fatalf("%s: context density diverges: %v vs %v at %v", sc.name, a, b, x)
			}
		}
	}
}

// TestBetaBatchMatchesSingle: the batch API must be bit-identical to
// per-query Selectivity calls.
func TestBetaBatchMatchesSingle(t *testing.T) {
	for _, sc := range momentCorpus(t) {
		span := sc.hi - sc.lo
		h := 0.04 * span
		if h <= 0 {
			h = 1
		}
		e, err := NewBeta(sc.samples, BetaConfig{Bandwidth: h, DomainLo: sc.lo, DomainHi: sc.hi})
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		r := xrand.New(43)
		qs := queriesFor(r, sc.lo, sc.hi, h, 120)
		got := e.SelectivityBatch(qs)
		for i, q := range qs {
			if want := e.Selectivity(q.A, q.B); got[i] != want {
				t.Fatalf("%s: batch[%d]=%v vs single %v for Q(%v,%v)", sc.name, i, got[i], want, q.A, q.B)
			}
		}
	}
}

// TestBetaMomentSummary pins the O(1) context moment read against a plain
// two-pass computation.
func TestBetaMomentSummary(t *testing.T) {
	r := xrand.New(51)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = 1e9 + r.Float64()*4096
	}
	ctx, err := NewFitContext(xs)
	if err != nil {
		t.Fatal(err)
	}
	mean, variance, ok := ctx.MomentSummary()
	if !ok {
		t.Fatal("MomentSummary not ok on finite data")
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	wantMean := sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - wantMean
		sq += d * d
	}
	wantVar := sq / float64(len(xs))
	// The compensated prefix sums are more accurate than the naive
	// reference at this offset; compare relatively.
	if math.Abs(mean-wantMean) > 1e-12*math.Abs(wantMean) || math.Abs(variance-wantVar)/wantVar > 1e-9 {
		t.Fatalf("MomentSummary (%v, %v) vs reference (%v, %v)", mean, variance, wantMean, wantVar)
	}
}

// TestBetaZeroAllocQueries: the closed-form query path must not allocate —
// the serving-engine budget the acceptance criteria pin.
func TestBetaZeroAllocQueries(t *testing.T) {
	r := xrand.New(61)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.Float64() * 1e6
	}
	e, err := NewBeta(xs, BetaConfig{Bandwidth: 2e4, DomainLo: 0, DomainHi: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(200, func() {
		e.Selectivity(1e5, 4e5)
		e.Selectivity(0, 3e4) // boundary-block path
	}); a != 0 {
		t.Fatalf("Selectivity allocates %v per run, want 0", a)
	}
	qs := queriesFor(xrand.New(62), 0, 1e6, 2e4, 64)
	dst := make([]float64, len(qs))
	if a := testing.AllocsPerRun(50, func() {
		e.SelectivityBatchInto(dst, qs)
	}); a != 0 {
		t.Fatalf("SelectivityBatchInto allocates %v per run, want 0", a)
	}
}

// FuzzBetaSelectivity: on fuzzer-chosen sample shapes and query bits, the
// moment path must match the Θ(n) reference within momentTol, estimates
// must stay in [0, 1], and degenerate queries must answer 0.
func FuzzBetaSelectivity(f *testing.F) {
	f.Add(uint64(1), uint16(200), uint8(20), 0.05, uint64(0), uint64(0))
	f.Add(uint64(2), uint16(1000), uint8(31), 0.01, math.Float64bits(1000.0), math.Float64bits(2000.0))
	f.Add(uint64(3), uint16(1), uint8(8), 0.5, math.Float64bits(math.NaN()), math.Float64bits(10.0))
	f.Add(uint64(4), uint16(300), uint8(15), 0.9, math.Float64bits(100.0), math.Float64bits(90.0))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, domPow uint8, hFrac float64, aBits, bBits uint64) {
		if n == 0 {
			n = 1
		}
		if n > 3000 {
			n = 3000
		}
		if domPow < 4 {
			domPow = 4
		}
		if domPow > 40 {
			domPow = 40
		}
		if math.IsNaN(hFrac) || hFrac <= 0 || hFrac > 1 {
			hFrac = 0.05
		}
		span := math.Exp2(float64(domPow))
		r := xrand.New(seed | 1)
		xs := make([]float64, int(n))
		switch seed % 3 {
		case 0:
			for i := range xs {
				xs[i] = math.Floor(r.Float64() * span)
			}
		case 1:
			c1, c2 := r.Float64()*span, r.Float64()*span
			for i := range xs {
				c := c1
				if i%2 == 0 {
					c = c2
				}
				xs[i] = math.Min(math.Max(c+(r.Float64()-0.5)*span*1e-4, 0), span)
			}
		default:
			v := math.Floor(r.Float64() * span)
			for i := range xs {
				xs[i] = v
			}
		}
		e, err := NewBeta(xs, BetaConfig{Bandwidth: hFrac * span, DomainLo: 0, DomainHi: span})
		if err != nil {
			t.Skip()
		}
		if !e.point {
			if mass := e.SelectivityUnclamped(0, span); math.Abs(mass-1) > momentTol {
				t.Fatalf("mass %v, want 1", mass)
			}
		}
		a, b := math.Float64frombits(aBits), math.Float64frombits(bBits)
		fast := e.Selectivity(a, b)
		lin := e.SelectivityLinear(a, b)
		if math.IsNaN(a) || math.IsNaN(b) || b < a {
			if fast != 0 || lin != 0 {
				t.Fatalf("degenerate Q(%v,%v) must be 0: fast=%v lin=%v", a, b, fast, lin)
			}
			return
		}
		if fast < 0 || fast > 1 || math.IsNaN(fast) {
			t.Fatalf("selectivity %v outside [0,1] for Q(%v,%v)", fast, a, b)
		}
		if math.Abs(fast-lin) > momentTol {
			t.Fatalf("moment %v vs linear %v for Q(%v,%v)", fast, lin, a, b)
		}
	})
}
