package kde

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"selest/internal/xmath"
	"selest/internal/xrand"
)

// clusteredSamples draws from two clusters of very different widths plus
// a sparse tail — the regime adaptive bandwidths exist for.
func clusteredSamples(n int, seed uint64) []float64 {
	r := xrand.New(seed)
	out := make([]float64, n)
	for i := range out {
		switch {
		case r.Float64() < 0.5:
			out[i] = r.NormalMeanStd(200, 5) // razor-sharp cluster
		case r.Float64() < 0.8:
			out[i] = r.NormalMeanStd(600, 50) // broad cluster
		default:
			out[i] = r.UniformRange(0, 1000) // diffuse background
		}
		out[i] = xmath.Clamp(out[i], 0, 1000)
	}
	return out
}

func TestNewVariableValidation(t *testing.T) {
	if _, err := NewVariable(nil, VariableConfig{PilotBandwidth: 1}); err == nil {
		t.Fatal("empty samples should error")
	}
	if _, err := NewVariable([]float64{1}, VariableConfig{PilotBandwidth: 0}); err == nil {
		t.Fatal("zero pilot bandwidth should error")
	}
	if _, err := NewVariable([]float64{1}, VariableConfig{PilotBandwidth: 1, Sensitivity: 2}); err == nil {
		t.Fatal("sensitivity > 1 should error")
	}
	if _, err := NewVariable([]float64{1}, VariableConfig{PilotBandwidth: 1, Reflect: true}); err == nil {
		t.Fatal("reflection without domain should error")
	}
	if _, err := NewVariable([]float64{5}, VariableConfig{PilotBandwidth: 1, Reflect: true, DomainLo: 0, DomainHi: 1}); err == nil {
		t.Fatal("samples outside domain should error")
	}
}

func TestVariableBandwidthsAdapt(t *testing.T) {
	samples := clusteredSamples(2000, 1)
	e, err := NewVariable(samples, VariableConfig{PilotBandwidth: 30})
	if err != nil {
		t.Fatal(err)
	}
	hs := e.Bandwidths()
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	// Mean bandwidth inside the sharp cluster must be well below the mean
	// bandwidth in the diffuse background.
	var sharpSum, sharpN, bgSum, bgN float64
	for i, x := range sorted {
		switch {
		case x > 185 && x < 215:
			sharpSum += hs[i]
			sharpN++
		case x > 800 && x < 1000:
			bgSum += hs[i]
			bgN++
		}
	}
	if sharpN == 0 || bgN == 0 {
		t.Fatal("test data degenerate")
	}
	if sharpSum/sharpN >= 0.5*bgSum/bgN {
		t.Fatalf("bandwidths did not adapt: sharp %v vs background %v", sharpSum/sharpN, bgSum/bgN)
	}
}

func TestVariableDensityIntegratesToOne(t *testing.T) {
	samples := clusteredSamples(800, 2)
	for _, reflect := range []bool{false, true} {
		e, err := NewVariable(samples, VariableConfig{
			PilotBandwidth: 25, Reflect: reflect, DomainLo: 0, DomainHi: 1000,
		})
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := -200.0, 1200.0
		if reflect {
			lo, hi = 0, 1000
		}
		mass := xmath.Simpson(e.Density, lo, hi, 8000)
		if math.Abs(mass-1) > 0.01 {
			t.Fatalf("reflect=%v: density mass = %v", reflect, mass)
		}
	}
}

func TestVariableSelectivityMatchesDensityIntegral(t *testing.T) {
	samples := clusteredSamples(500, 3)
	e, err := NewVariable(samples, VariableConfig{PilotBandwidth: 25, Reflect: true, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][2]float64{{0, 100}, {150, 250}, {500, 700}, {900, 1000}} {
		want := xmath.Simpson(e.Density, q[0], q[1], 8000)
		got := e.Selectivity(q[0], q[1])
		if !xmath.AlmostEqual(got, want, 2e-3) {
			t.Fatalf("σ̂(%v,%v) = %v, ∫f̂ = %v", q[0], q[1], got, want)
		}
	}
}

func TestVariableZeroSensitivityMatchesFixed(t *testing.T) {
	// α→0 recovers the fixed-bandwidth estimator exactly. The config
	// treats 0 as "default", so probe with a tiny α instead.
	samples := clusteredSamples(400, 4)
	v, err := NewVariable(samples, VariableConfig{PilotBandwidth: 30, Sensitivity: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(samples, Config{Bandwidth: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][2]float64{{100, 300}, {400, 800}} {
		a, b := v.Selectivity(q[0], q[1]), f.Selectivity(q[0], q[1])
		if !xmath.AlmostEqual(a, b, 1e-6) {
			t.Fatalf("α≈0 variable %v != fixed %v", a, b)
		}
	}
}

func TestVariableBeatsFixedOnMixedScales(t *testing.T) {
	// On data whose clusters have very different widths, one fixed
	// bandwidth cannot fit both; the adaptive estimator must achieve lower
	// integrated squared error against a huge-sample reference histogram.
	train := clusteredSamples(2000, 5)
	ref := clusteredSamples(400000, 6)
	sort.Float64s(ref)
	refSel := func(a, b float64) float64 {
		lo := sort.SearchFloat64s(ref, a)
		hi := sort.Search(len(ref), func(i int) bool { return ref[i] > b })
		return float64(hi-lo) / float64(len(ref))
	}

	v, err := NewVariable(train, VariableConfig{PilotBandwidth: 30, Reflect: true, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(train, Config{Bandwidth: 30, Boundary: BoundaryReflect, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	var vErr, fErr float64
	queries := 0
	for a := 0.0; a < 990; a += 7 {
		b := a + 10
		truth := refSel(a, b)
		if truth == 0 {
			continue
		}
		vErr += math.Abs(v.Selectivity(a, b)-truth) / truth
		fErr += math.Abs(f.Selectivity(a, b)-truth) / truth
		queries++
	}
	if vErr >= fErr {
		t.Fatalf("variable bandwidth MRE %.4f not below fixed %.4f", vErr/float64(queries), fErr/float64(queries))
	}
}

func TestVariableAccessors(t *testing.T) {
	e, err := NewVariable([]float64{1, 2, 3}, VariableConfig{PilotBandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.SampleSize() != 3 {
		t.Fatal("SampleSize wrong")
	}
	if e.Name() != "variable-kernel(epanechnikov)" {
		t.Fatalf("Name = %q", e.Name())
	}
	if len(e.Bandwidths()) != 3 {
		t.Fatal("Bandwidths wrong length")
	}
}

func TestVariableConstantSample(t *testing.T) {
	// All duplicates: the pilot density floor must keep bandwidths finite.
	e, err := NewVariable([]float64{5, 5, 5, 5}, VariableConfig{PilotBandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Selectivity(4, 6); got < 0.9 {
		t.Fatalf("constant-sample σ̂(4,6) = %v", got)
	}
}

// Property: selectivity ∈ [0,1], monotone under widening, additive.
func TestQuickVariableInvariants(t *testing.T) {
	samples := clusteredSamples(500, 7)
	e, err := NewVariable(samples, VariableConfig{PilotBandwidth: 30, Reflect: true, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(rawA, rawW uint8) bool {
		a := float64(rawA) / 255 * 900
		w := float64(rawW) / 255 * 100
		m := a + w/2
		s := e.Selectivity(a, a+w)
		parts := e.Selectivity(a, m) + e.Selectivity(m, a+w)
		wide := e.Selectivity(a-10, a+w+10)
		return s >= 0 && s <= 1 && wide >= s-1e-12 && xmath.AlmostEqual(s, parts, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
