package kde

import (
	"fmt"
	"math"

	"selest/internal/kernel"
)

// EstimatorND estimates the selectivity of d-dimensional hyper-rectangle
// queries with a product kernel and per-axis bandwidths — the full
// generalisation of the paper's future-work item #1 (Estimator2D is the
// two-dimensional special case kept for its friendlier API):
//
//	f̂(x) = 1/(n·Πh_j) Σ_i Π_j K((x_j − X_ij)/h_j)
//
// Boundary repair uses per-axis reflection.
type EstimatorND struct {
	points  [][]float64 // points[i][j] = sample i, axis j
	n, dims int
	hs      []float64
	k       kernel.Kernel
	reflect bool
	lo, hi  []float64
}

// ConfigND parameterises an N-dimensional kernel estimator.
type ConfigND struct {
	// Kernel is the per-axis smoothing kernel; nil defaults to
	// Epanechnikov.
	Kernel kernel.Kernel
	// Bandwidths holds one positive bandwidth per axis.
	Bandwidths []float64
	// Reflect enables per-axis sample reflection at [Lo[j], Hi[j]].
	Reflect bool
	// Lo and Hi bound the domain per axis (required with Reflect).
	Lo, Hi []float64
}

// NewND builds an estimator from points (copied). Every point must have
// the same dimensionality as Bandwidths.
func NewND(points [][]float64, cfg ConfigND) (*EstimatorND, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("kde: empty sample set")
	}
	dims := len(cfg.Bandwidths)
	if dims == 0 {
		return nil, fmt.Errorf("kde: need at least one bandwidth")
	}
	for j, h := range cfg.Bandwidths {
		if h <= 0 || math.IsNaN(h) || math.IsInf(h, 0) {
			return nil, fmt.Errorf("kde: bandwidth %d must be positive and finite, got %v", j, h)
		}
	}
	k := cfg.Kernel
	if k == nil {
		k = kernel.Epanechnikov{}
	}
	if cfg.Reflect {
		if len(cfg.Lo) != dims || len(cfg.Hi) != dims {
			return nil, fmt.Errorf("kde: reflection needs %d-dimensional Lo/Hi", dims)
		}
		for j := range cfg.Lo {
			if !(cfg.Hi[j] > cfg.Lo[j]) {
				return nil, fmt.Errorf("kde: axis %d domain [%v, %v] is empty", j, cfg.Lo[j], cfg.Hi[j])
			}
		}
	}
	e := &EstimatorND{
		points:  make([][]float64, len(points)),
		n:       len(points),
		dims:    dims,
		hs:      append([]float64(nil), cfg.Bandwidths...),
		k:       k,
		reflect: cfg.Reflect,
		lo:      append([]float64(nil), cfg.Lo...),
		hi:      append([]float64(nil), cfg.Hi...),
	}
	for i, p := range points {
		if len(p) != dims {
			return nil, fmt.Errorf("kde: point %d has %d dimensions, want %d", i, len(p), dims)
		}
		e.points[i] = append([]float64(nil), p...)
	}
	return e, nil
}

// Selectivity returns the estimated fraction of records inside the
// hyper-rectangle with per-axis bounds [a[j], b[j]].
func (e *EstimatorND) Selectivity(a, b []float64) (float64, error) {
	if len(a) != e.dims || len(b) != e.dims {
		return 0, fmt.Errorf("kde: query has %d/%d bounds, want %d", len(a), len(b), e.dims)
	}
	qa := append([]float64(nil), a...)
	qb := append([]float64(nil), b...)
	for j := range qa {
		if qb[j] < qa[j] {
			return 0, nil
		}
		if e.reflect {
			qa[j] = math.Max(qa[j], e.lo[j])
			qb[j] = math.Min(qb[j], e.hi[j])
			if qb[j] < qa[j] {
				return 0, nil
			}
		}
	}
	sum := 0.0
	for _, p := range e.points {
		mass := 1.0
		for j := 0; j < e.dims && mass != 0; j++ {
			mass *= e.axisMass(qa[j], qb[j], p[j], j)
		}
		sum += mass
	}
	s := sum / float64(e.n)
	if s < 0 {
		return 0, nil
	}
	if s > 1 {
		return 1, nil
	}
	return s, nil
}

// axisMass is the kernel mass of one sample coordinate over [a, b] on
// axis j, including reflection images.
func (e *EstimatorND) axisMass(a, b, x float64, j int) float64 {
	h := e.hs[j]
	m := e.k.CDF((b-x)/h) - e.k.CDF((a-x)/h)
	if e.reflect {
		for _, mx := range []float64{2*e.lo[j] - x, 2*e.hi[j] - x} {
			m += e.k.CDF((b-mx)/h) - e.k.CDF((a-mx)/h)
		}
	}
	return m
}

// Density returns the estimated joint density at x.
func (e *EstimatorND) Density(x []float64) (float64, error) {
	if len(x) != e.dims {
		return 0, fmt.Errorf("kde: point has %d dimensions, want %d", len(x), e.dims)
	}
	if e.reflect {
		for j := range x {
			if x[j] < e.lo[j] || x[j] > e.hi[j] {
				return 0, nil
			}
		}
	}
	norm := float64(e.n)
	for _, h := range e.hs {
		norm *= h
	}
	sum := 0.0
	for _, p := range e.points {
		w := 1.0
		for j := 0; j < e.dims && w != 0; j++ {
			kj := e.k.Eval((x[j] - p[j]) / e.hs[j])
			if e.reflect {
				kj += e.k.Eval((x[j]-(2*e.lo[j]-p[j]))/e.hs[j]) +
					e.k.Eval((x[j]-(2*e.hi[j]-p[j]))/e.hs[j])
			}
			w *= kj
		}
		sum += w
	}
	return sum / norm, nil
}

// Dims returns the dimensionality.
func (e *EstimatorND) Dims() int { return e.dims }

// SampleSize returns the number of sample points.
func (e *EstimatorND) SampleSize() int { return e.n }

// Name identifies the estimator in experiment output.
func (e *EstimatorND) Name() string {
	return fmt.Sprintf("kernel%dd(%s)", e.dims, e.k.Name())
}
