package kde

import (
	"math"
	"sort"
	"testing"

	"selest/internal/xmath"
	"selest/internal/xrand"
)

// TestNewFromContextBitIdentical pins the context's core guarantee:
// estimators fitted through a shared FitContext answer exactly — bit for
// bit — what kde.New over the same samples answers, in every boundary
// mode. The context only removes redundant sorting/indexing work; it must
// not perturb a single result.
func TestNewFromContextBitIdentical(t *testing.T) {
	r := xrand.New(321)
	for _, c := range momentCorpus(t) {
		ctx, err := NewFitContext(c.samples)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []BoundaryMode{BoundaryNone, BoundaryReflect, BoundaryKernels} {
			for _, hFrac := range []float64{0.01, 0.2} {
				cfg := Config{Bandwidth: (c.hi - c.lo) * hFrac, Boundary: mode, DomainLo: c.lo, DomainHi: c.hi}
				direct, err := New(c.samples, cfg)
				if err != nil {
					t.Fatalf("%s: New: %v", c.name, err)
				}
				shared, err := NewFromContext(ctx, cfg)
				if err != nil {
					t.Fatalf("%s: NewFromContext: %v", c.name, err)
				}
				for _, q := range queriesFor(r, c.lo, c.hi, cfg.Bandwidth, 40) {
					if a, b := direct.Selectivity(q.A, q.B), shared.Selectivity(q.A, q.B); a != b {
						t.Fatalf("%s mode=%d: Selectivity(%v,%v) %v != %v", c.name, mode, q.A, q.B, a, b)
					}
				}
				for _, x := range xmath.Linspace(c.lo, c.hi, 33) {
					if a, b := direct.Density(x), shared.Density(x); a != b {
						t.Fatalf("%s mode=%d: Density(%v) %v != %v", c.name, mode, x, a, b)
					}
				}
			}
		}
	}
}

// TestFitContextSharedAcrossFits reuses one context for many bandwidths —
// the DPI/LSCV/oracle access pattern — and checks each fit stands alone.
func TestFitContextSharedAcrossFits(t *testing.T) {
	samples := uniformSamples(t, 900, 0, 512, 9)
	ctx, err := NewFitContext(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []float64{1, 4, 16, 64, 200} {
		cfg := Config{Bandwidth: h, Boundary: BoundaryReflect, DomainLo: 0, DomainHi: 512}
		shared, err := ctx.NewEstimator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := New(samples, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range [][2]float64{{0, 512}, {10, 20}, {500, 512}, {128, 384}} {
			if a, b := direct.Selectivity(q[0], q[1]), shared.Selectivity(q[0], q[1]); a != b {
				t.Fatalf("h=%v: Selectivity(%v,%v) %v != %v", h, q[0], q[1], a, b)
			}
		}
	}
}

func TestNewFitContextSortedValidation(t *testing.T) {
	if _, err := NewFitContextSorted(nil); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := NewFitContextSorted([]float64{3, 1, 2}); err == nil {
		t.Fatal("unsorted input should error")
	}
	if _, err := NewFitContext(nil); err == nil {
		t.Fatal("empty input should error")
	}
	ctx, err := NewFitContextSorted([]float64{1, 2, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.SampleSize() != 4 {
		t.Fatalf("SampleSize = %d, want 4", ctx.SampleSize())
	}
	if got := ctx.Sorted(); !sort.Float64sAreSorted(got) || len(got) != 4 {
		t.Fatalf("Sorted() = %v", got)
	}
}

// TestFitContextSegmentAliasing covers the hybrid access pattern: contexts
// over contiguous sub-slices of one sorted array, with no copying.
func TestFitContextSegmentAliasing(t *testing.T) {
	sorted := make([]float64, 200)
	for i := range sorted {
		sorted[i] = float64(i)
	}
	seg := sorted[50:150]
	ctx, err := NewFitContextSorted(seg)
	if err != nil {
		t.Fatal(err)
	}
	if &ctx.Sorted()[0] != &seg[0] {
		t.Fatal("context must alias, not copy, the sorted segment")
	}
	e, err := ctx.NewEstimator(Config{Bandwidth: 5, Boundary: BoundaryKernels, DomainLo: 49.5, DomainHi: 149.5})
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Selectivity(49.5, 149.5); math.Abs(s-1) > 0.05 {
		t.Fatalf("segment estimator mass %v, want ≈1", s)
	}
}

// TestFitPathTelemetryMoves is the structural telemetry test: the fit
// counters must advance when the fit path runs, so dashboards can tell
// reuse is actually happening.
func TestFitPathTelemetryMoves(t *testing.T) {
	sortsBefore := fitSortsAvoided.Value()
	gridBefore := fitGridEvals.Value()

	samples := uniformSamples(t, 300, 0, 100, 77)
	ctx, err := NewFitContext(samples)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ctx.NewEstimator(Config{Bandwidth: 4, Boundary: BoundaryReflect, DomainLo: 0, DomainHi: 100})
	if err != nil {
		t.Fatal(err)
	}
	e.DensityGrid(0, 100, 64)

	if got := fitSortsAvoided.Value(); got <= sortsBefore {
		t.Fatalf("fit_sorts_avoided did not move: %d -> %d", sortsBefore, got)
	}
	if got := fitGridEvals.Value(); got < gridBefore+64 {
		t.Fatalf("fit_grid_evals moved %d -> %d, want at least +64", gridBefore, got)
	}
}
