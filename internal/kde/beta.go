package kde

// The beta-kernel estimator: a boundary-bias-free kernel estimator on a
// bounded domain, built for the closed-form bandwidth engine (the
// beta-kernel selector literature — arXiv:2601.19553 — pairs an O(1)
// moment-based bandwidth with a kernel family whose shape adapts at the
// boundaries, so no pilot grids and no boundary-kernel strips are needed).
//
// Implementation: the domain [lo, hi] (defaulting to the sample hull, the
// normalized-[0,1] mapping of the paper applied at original scale) carries
// a cut-and-normalize Epanechnikov family,
//
//	f̂(x) = (1/nh) Σᵢ wᵢ·K((x − Xᵢ)/h),  wᵢ = 1/Mᵢ,
//	Mᵢ  = CDF((hi − Xᵢ)/h) − CDF((lo − Xᵢ)/h) ∈ [½, 1],
//
// restricted to x ∈ [lo, hi]: each sample's kernel is renormalised by the
// mass Mᵢ it keeps inside the domain, so the estimate integrates to
// exactly 1 over the domain — boundary bias is eliminated by construction
// rather than repaired by reflection or strip kernels. The bandwidth is
// clamped to span/2, which keeps the two boundary blocks (samples whose
// kernel spills over an edge, weight wᵢ ∈ (1, 2]) disjoint; every interior
// sample has weight exactly 1.
//
// Query path: the interior samples form one contiguous index range of the
// shared prefix-moment index (momentIndex.rangeCdfSum), and each boundary
// block carries its own small weighted moment index (wMomentIndex), so a
// range query is O(log n) with zero allocations — the same complexity as
// the plain kernel path, without its strip closed forms.

import (
	"fmt"
	"math"
	"sort"

	"selest/internal/fsort"
	"selest/internal/kernel"
	"selest/internal/telemetry"
	"selest/internal/xmath"
)

// BetaConfig parameterises a beta-kernel estimator.
type BetaConfig struct {
	// Bandwidth is the smoothing parameter h; it must be positive and is
	// clamped to half the domain span (the cut-and-normalize family is
	// defined for kernels no wider than the domain).
	Bandwidth float64
	// DomainLo/DomainHi bound the attribute domain. Both zero defaults to
	// the sample hull [min, max] — the normalization interval of the
	// closed-form selector.
	DomainLo, DomainHi float64
}

// BetaEstimator is a beta-kernel selectivity estimator over a fixed
// sample set. It is immutable after construction and safe for concurrent
// use.
type BetaEstimator struct {
	sorted []float64
	n      int
	h      float64
	lo, hi float64
	point  bool // zero-span domain: a point mass at lo

	// moments is the shared prefix-moment index over all samples
	// (possibly context-shared); nil for untrustworthy magnitudes, in
	// which case queries take the Θ(n) weighted scan.
	moments *momentIndex
	// iL/iR delimit the boundary blocks: left block [0, iL) (x < lo+h),
	// right block [iR, n) (x > hi−h). Interior samples [iL, iR) have
	// weight exactly 1.
	iL, iR int
	// left/right are the weighted moment indexes of the boundary blocks
	// (nil when the block is empty or moments is nil).
	left, right *wMomentIndex
	// wl/wr are the per-sample block weights, kept for the linear
	// reference path and the moment-free fallback.
	wl, wr []float64
}

// NewBeta builds a beta-kernel estimator from a sample set (copied).
// Callers holding a FitContext should use FitContext.NewBetaEstimator,
// which reuses the context's sort and moment index.
func NewBeta(samples []float64, cfg BetaConfig) (*BetaEstimator, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("kde: empty sample set")
	}
	sorted := append([]float64(nil), samples...)
	fsort.Float64s(sorted)
	return newBetaSorted(sorted, cfg, nil)
}

// newBetaSorted builds the estimator over an already-sorted slice, which
// it aliases. shared, when non-nil, is a prefix-moment index over exactly
// that slice.
func newBetaSorted(sorted []float64, cfg BetaConfig, shared *momentIndex) (*BetaEstimator, error) {
	n := len(sorted)
	if n == 0 {
		return nil, fmt.Errorf("kde: empty sample set")
	}
	lo, hi := cfg.DomainLo, cfg.DomainHi
	if lo == 0 && hi == 0 {
		lo, hi = sorted[0], sorted[n-1]
	}
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) || hi < lo {
		return nil, fmt.Errorf("kde: beta estimator needs a finite domain, got [%v, %v]", lo, hi)
	}
	if !(sorted[0] >= lo) || !(sorted[n-1] <= hi) {
		return nil, fmt.Errorf("kde: samples fall outside the domain [%v, %v]", lo, hi)
	}
	e := &BetaEstimator{sorted: sorted, n: n, lo: lo, hi: hi}
	span := hi - lo
	if span == 0 {
		// Constant data under a defaulted (or explicit zero-width) domain:
		// a point mass at lo. No bandwidth applies.
		e.point = true
		return e, nil
	}
	h := cfg.Bandwidth
	if h <= 0 || math.IsNaN(h) || math.IsInf(h, 0) {
		return nil, fmt.Errorf("kde: bandwidth must be positive and finite, got %v", cfg.Bandwidth)
	}
	if h > span/2 {
		h = span / 2
	}
	e.h = h

	e.moments = shared
	if e.moments == nil {
		e.moments = newMomentIndex(sorted)
	}
	if e.moments != nil {
		// Interior NaN poisons the prefix totals without tripping
		// newMomentIndex's endpoint checks; refuse it in O(1) here.
		if math.IsNaN(e.moments.p3[n].val()) {
			return nil, fmt.Errorf("kde: beta estimator needs finite samples")
		}
	} else {
		for _, x := range sorted {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("kde: beta estimator needs finite samples")
			}
		}
	}

	// Boundary blocks: samples whose kernel spills over a domain edge.
	// h ≤ span/2 keeps lo+h ≤ hi−h, so the blocks are disjoint (up to one
	// ulp of threshold rounding, collapsed below).
	e.iL = sort.SearchFloat64s(sorted, lo+h)
	e.iR = sort.Search(n, func(i int) bool { return sorted[i] > hi-h })
	if e.iR < e.iL {
		e.iR = e.iL
	}
	e.wl = betaWeights(sorted[:e.iL], lo, hi, h)
	e.wr = betaWeights(sorted[e.iR:], lo, hi, h)
	if e.moments != nil {
		e.left = newWMomentIndex(sorted[:e.iL], e.wl, e.moments.c)
		e.right = newWMomentIndex(sorted[e.iR:], e.wr, e.moments.c)
	}
	return e, nil
}

// betaWeights returns the cut-and-normalize weights wᵢ = 1/Mᵢ for one
// boundary block. With h ≤ span/2 the inside-domain mass Mᵢ is at least ½
// (a sample exactly on an edge keeps half its kernel), so wᵢ ∈ [1, 2].
func betaWeights(block []float64, lo, hi, h float64) []float64 {
	if len(block) == 0 {
		return nil
	}
	ep := kernel.Epanechnikov{}
	ws := make([]float64, len(block))
	for i, x := range block {
		ws[i] = 1 / ep.CDFDiff((hi-x)/h, (lo-x)/h)
	}
	return ws
}

// Bandwidth returns the (possibly span-clamped) smoothing parameter h.
func (e *BetaEstimator) Bandwidth() float64 { return e.h }

// SampleSize returns the number of samples.
func (e *BetaEstimator) SampleSize() int { return e.n }

// Domain returns the estimation domain [lo, hi].
func (e *BetaEstimator) Domain() (lo, hi float64) { return e.lo, e.hi }

// Name identifies the estimator in experiment output.
func (e *BetaEstimator) Name() string { return "beta-kernel(epanechnikov)" }

// Selectivity returns the estimated selectivity σ̂(a,b) ∈ [0,1] of the
// range query Q(a,b). Inverted ranges and NaN bounds yield 0.
func (e *BetaEstimator) Selectivity(a, b float64) float64 {
	s := e.SelectivityUnclamped(a, b)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// SelectivityUnclamped is Selectivity without the final clamp to [0,1].
// The beta-kernel estimate is a proper density over the domain, so the
// raw value only strays outside [0,1] by floating-point rounding; the
// unclamped form exists for mass-accounting tests and renormalising
// callers.
func (e *BetaEstimator) SelectivityUnclamped(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) || b < a {
		return 0
	}
	if telemetry.Enabled() {
		kdeQueries.Inc()
		if e.moments != nil {
			kdeMomentQueries.Inc()
		}
	}
	if e.point {
		if a <= e.lo && b >= e.lo {
			return 1
		}
		return 0
	}
	a = math.Max(a, e.lo)
	b = math.Min(b, e.hi)
	if b < a {
		return 0
	}
	if e.moments != nil {
		return (e.cdfAt(b) - e.cdfAt(a)) / float64(e.n)
	}
	return (e.cdfLinear(b) - e.cdfLinear(a)) / float64(e.n)
}

// cdfAt returns F(y) = Σᵢ wᵢ·CDF((y − Xᵢ)/h) through the moment indexes:
// the interior range of the shared index plus the two weighted blocks.
func (e *BetaEstimator) cdfAt(y float64) float64 {
	s := e.moments.rangeCdfSum(e.iL, e.iR, y, e.h)
	if e.left != nil {
		s += e.left.cdfSum(y, e.h)
	}
	if e.right != nil {
		s += e.right.cdfSum(y, e.h)
	}
	return s
}

// cdfLinear is the Θ(n) reference for cdfAt: an explicit loop over every
// sample with per-sample weights. It is the evaluation path when the
// moment index is unavailable and the reference the property tests
// compare the closed forms against.
func (e *BetaEstimator) cdfLinear(y float64) float64 {
	ep := kernel.Epanechnikov{}
	sum := 0.0
	for i, x := range e.sorted {
		c := ep.CDF((y - x) / e.h)
		if c == 0 {
			continue
		}
		w := 1.0
		if i < e.iL {
			w = e.wl[i]
		} else if i >= e.iR {
			w = e.wr[i-e.iR]
		}
		sum += w * c
	}
	return sum
}

// SelectivityLinear evaluates the query through the Θ(n) reference path
// even when the moment index exists — the cross-check for tests and the
// ablation baseline.
func (e *BetaEstimator) SelectivityLinear(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) || b < a {
		return 0
	}
	if e.point {
		if a <= e.lo && b >= e.lo {
			return 1
		}
		return 0
	}
	a = math.Max(a, e.lo)
	b = math.Min(b, e.hi)
	if b < a {
		return 0
	}
	s := (e.cdfLinear(b) - e.cdfLinear(a)) / float64(e.n)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// SelectivityBatch answers every query and returns the estimates in
// input order.
func (e *BetaEstimator) SelectivityBatch(qs []Range) []float64 {
	return e.SelectivityBatchInto(make([]float64, 0, len(qs)), qs)
}

// SelectivityBatchInto is SelectivityBatch writing into dst (reallocated
// only when its capacity is insufficient). Every query goes through the
// same O(log n) closed forms as Selectivity — same searches, same
// operation order — so each result is bit-identical to the single-query
// answer by construction.
func (e *BetaEstimator) SelectivityBatchInto(dst []float64, qs []Range) []float64 {
	if cap(dst) < len(qs) {
		dst = make([]float64, len(qs))
	} else {
		dst = dst[:len(qs)]
	}
	if telemetry.Enabled() {
		kdeBatchCalls.Inc()
		kdeBatchQueries.Add(int64(len(qs)))
	}
	for i, q := range qs {
		dst[i] = e.Selectivity(q.A, q.B)
	}
	return dst
}

// Density returns the estimated probability density f̂(x); x outside the
// domain evaluates to 0. The point-mass degenerate mode has no density.
func (e *BetaEstimator) Density(x float64) float64 {
	if e.point || math.IsNaN(x) || x < e.lo || x > e.hi {
		return 0
	}
	var s float64
	if e.moments != nil {
		wl, wr := e.moments.window(x, e.h)
		if wl < e.iL {
			wl = e.iL
		}
		if wr > e.iR {
			wr = e.iR
		}
		if wr > wl {
			s = e.moments.densitySum(wl, wr, x, e.h)
		}
		if e.left != nil {
			s += e.left.densityAt(x, e.h)
		}
		if e.right != nil {
			s += e.right.densityAt(x, e.h)
		}
	} else {
		s = e.densityLinear(x)
	}
	return s / (float64(e.n) * e.h)
}

// densityLinear is the Θ(n) weighted density scan.
func (e *BetaEstimator) densityLinear(x float64) float64 {
	ep := kernel.Epanechnikov{}
	sum := 0.0
	for i, xi := range e.sorted {
		k := ep.Eval((x - xi) / e.h)
		if k == 0 {
			continue
		}
		w := 1.0
		if i < e.iL {
			w = e.wl[i]
		} else if i >= e.iR {
			w = e.wr[i-e.iR]
		}
		sum += w * k
	}
	return sum
}

// DensityGrid evaluates the density over an m-point uniform grid on
// [lo, hi]. Each point is one O(log n) closed-form evaluation; unlike the
// plain kernel path the beta path has no pilot sweeps (its selectors are
// closed-form), so no monotone-cursor batching is needed here.
func (e *BetaEstimator) DensityGrid(lo, hi float64, m int) []float64 {
	xs := xmath.Linspace(lo, hi, m)
	out := make([]float64, len(xs))
	if telemetry.Enabled() {
		fitGridEvals.Add(int64(len(xs)))
	}
	for i, x := range xs {
		out[i] = e.Density(x)
	}
	return out
}

// ---------------------------------------------------------------------------
// Weighted boundary-block moment index.

// wMomentIndex holds weighted, centered, compensated prefix moments over
// one boundary block: p0..p3 are prefix sums of wᵢ·(Xᵢ−c)^k, sharing the
// main index's centering constant c. The closed forms mirror momentIndex
// with the in-window weight total W (from p0) replacing the sample count:
//
//	Σ wᵢ·CDF(uᵢ) = ½W + ¾Σwᵢuᵢ − ¼Σwᵢuᵢ³
//	Σ wᵢ·K(uᵢ)   = ¾(W − Σwᵢuᵢ²)
//
// Blocks hold O(n·h/span) samples, so the extra prefix arrays cost a few
// percent of the main index.
type wMomentIndex struct {
	xs             []float64
	c              float64
	p0, p1, p2, p3 []dd
}

// newWMomentIndex builds the block index; nil for an empty block.
func newWMomentIndex(xs, ws []float64, c float64) *wMomentIndex {
	n := len(xs)
	if n == 0 {
		return nil
	}
	b := &wMomentIndex{
		xs: xs, c: c,
		p0: make([]dd, n+1), p1: make([]dd, n+1),
		p2: make([]dd, n+1), p3: make([]dd, n+1),
	}
	var s0, s1, s2, s3 dd
	for i, x := range xs {
		w := ws[i]
		y := twoDiff(x, c) // exact
		y2 := y.mul(y)
		s0 = s0.add(dd{w, 0})
		s1 = s1.add(y.mulF(w))
		s2 = s2.add(y2.mulF(w))
		s3 = s3.add(y2.mul(y).mulF(w))
		b.p0[i+1] = s0
		b.p1[i+1] = s1
		b.p2[i+1] = s2
		b.p3[i+1] = s3
	}
	return b
}

// cdfSum returns Σᵢ wᵢ·CDF((y − Xᵢ)/h) over the whole block in
// O(log block): full contributors below the kernel window count their
// weight, the in-window remainder takes the weighted closed form.
func (b *wMomentIndex) cdfSum(y, h float64) float64 {
	xs := b.xs
	l := sort.SearchFloat64s(xs, y-h)
	r := sort.Search(len(xs), func(i int) bool { return xs[i] > y+h })
	s := b.p0[l].val()
	if r > l {
		s += b.momentCdf(l, r, y, h)
	}
	return s
}

// momentCdf is the weighted in-window closed form over block range [l, r).
func (b *wMomentIndex) momentCdf(l, r int, y, h float64) float64 {
	w := b.p0[r].sub(b.p0[l])
	s1 := b.p1[r].sub(b.p1[l])
	s2 := b.p2[r].sub(b.p2[l])
	s3 := b.p3[r].sub(b.p3[l])
	z := twoDiff(y, b.c)
	// Σwu = (W·z − S1)/h.
	sumU := z.mul(w).sub(s1)
	// Σwu³ = (W·z³ − 3z²·S1 + 3z·S2 − S3)/h³.
	z2 := z.mul(z)
	sumU3 := z2.mul(z).mul(w).
		sub(z2.mul(s1).mulF(3)).
		add(z.mul(s2).mulF(3)).
		sub(s3)
	ih := 1 / h
	return 0.5*w.val() + 0.25*ih*(3*sumU.val()-sumU3.val()*ih*ih)
}

// densityAt returns Σᵢ wᵢ·K((x − Xᵢ)/h) over the block.
func (b *wMomentIndex) densityAt(x, h float64) float64 {
	xs := b.xs
	l := sort.SearchFloat64s(xs, x-h)
	r := sort.Search(len(xs), func(i int) bool { return xs[i] > x+h })
	if r <= l {
		return 0
	}
	w := b.p0[r].sub(b.p0[l])
	s1 := b.p1[r].sub(b.p1[l])
	s2 := b.p2[r].sub(b.p2[l])
	z := twoDiff(x, b.c)
	// Σw(x−Xᵢ)² = W·z² − 2z·S1 + S2.
	q := z.mul(z).mul(w).sub(z.mul(s1).mulF(2)).add(s2)
	ih := 1 / h
	return 0.75 * (w.val() - q.val()*ih*ih)
}
