package kde

import (
	"fmt"
	"math"
	"sort"

	"selest/internal/fsort"
	"selest/internal/kernel"
)

// VariableEstimator is a sample-point adaptive kernel estimator
// (Abramson's square-root law): each sample carries its own bandwidth
//
//	h_i = h · (f̃(X_i) / g)^(−1/2)
//
// where f̃ is a fixed-bandwidth pilot estimate and g the geometric mean of
// the pilot densities at the samples. Dense regions get narrow kernels
// (resolving sharp clusters), sparse regions get wide ones (taming tail
// variance). This is an extension beyond the paper — the natural
// alternative to its hybrid estimator for change-point-rich data — and
// the ablation bench compares the two.
type VariableEstimator struct {
	sorted []float64 // sorted samples
	hs     []float64 // per-sample bandwidths, parallel to sorted
	maxH   float64
	n      int
	k      kernel.Kernel
	lo, hi float64
	// reflect mirrors boundary-adjacent samples (with their bandwidths).
	reflect     bool
	refl        []float64
	reflHs      []float64
	baseH       float64
	sensitivity float64
}

// VariableConfig parameterises a variable-bandwidth estimator.
type VariableConfig struct {
	// Kernel is the smoothing kernel; nil defaults to Epanechnikov.
	Kernel kernel.Kernel
	// PilotBandwidth is the fixed bandwidth of the pilot estimate and the
	// base factor h of the per-sample bandwidths. It must be positive
	// (use the normal scale rule).
	PilotBandwidth float64
	// Sensitivity α ∈ [0, 1] exponentiates the adaptation:
	// h_i = h·(f̃(X_i)/g)^(−α). 0 recovers the fixed-bandwidth estimator;
	// 0.5 is Abramson's choice and the default.
	Sensitivity float64
	// Reflect enables boundary reflection at [DomainLo, DomainHi].
	Reflect            bool
	DomainLo, DomainHi float64
}

// NewVariable builds a variable-bandwidth estimator from a sample set.
func NewVariable(samples []float64, cfg VariableConfig) (*VariableEstimator, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("kde: empty sample set")
	}
	if cfg.PilotBandwidth <= 0 || math.IsNaN(cfg.PilotBandwidth) || math.IsInf(cfg.PilotBandwidth, 0) {
		return nil, fmt.Errorf("kde: pilot bandwidth must be positive and finite, got %v", cfg.PilotBandwidth)
	}
	k := cfg.Kernel
	if k == nil {
		k = kernel.Epanechnikov{}
	}
	alpha := cfg.Sensitivity
	if alpha == 0 {
		alpha = 0.5
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("kde: sensitivity %v outside [0, 1]", alpha)
	}
	if cfg.Reflect && !(cfg.DomainHi > cfg.DomainLo) {
		return nil, fmt.Errorf("kde: reflection needs a proper domain, got [%v, %v]", cfg.DomainLo, cfg.DomainHi)
	}

	e := &VariableEstimator{
		sorted:      append([]float64(nil), samples...),
		n:           len(samples),
		k:           k,
		lo:          cfg.DomainLo,
		hi:          cfg.DomainHi,
		reflect:     cfg.Reflect,
		baseH:       cfg.PilotBandwidth,
		sensitivity: alpha,
	}
	fsort.Float64s(e.sorted)
	if cfg.Reflect && (e.sorted[0] < cfg.DomainLo || e.sorted[e.n-1] > cfg.DomainHi) {
		return nil, fmt.Errorf("kde: samples fall outside the domain [%v, %v]", cfg.DomainLo, cfg.DomainHi)
	}

	// Pilot: fixed-bandwidth estimate at the samples themselves.
	pilotCfg := Config{Kernel: k, Bandwidth: cfg.PilotBandwidth}
	if cfg.Reflect {
		pilotCfg.Boundary = BoundaryReflect
		pilotCfg.DomainLo, pilotCfg.DomainHi = cfg.DomainLo, cfg.DomainHi
	}
	pilot, err := New(e.sorted, pilotCfg)
	if err != nil {
		return nil, err
	}
	dens := make([]float64, e.n)
	logSum := 0.0
	// Floor the pilot density to avoid log(0) and unbounded bandwidths for
	// isolated samples: one-kernel-mass spread over the sample hull.
	span := e.sorted[e.n-1] - e.sorted[0]
	if span <= 0 {
		span = 1
	}
	floor := 1 / (float64(e.n) * span * 100)
	for i, x := range e.sorted {
		d := pilot.Density(x)
		if d < floor {
			d = floor
		}
		dens[i] = d
		logSum += math.Log(d)
	}
	g := math.Exp(logSum / float64(e.n))

	e.hs = make([]float64, e.n)
	for i := range e.hs {
		e.hs[i] = cfg.PilotBandwidth * math.Pow(dens[i]/g, -alpha)
		if e.hs[i] > e.maxH {
			e.maxH = e.hs[i]
		}
	}

	if cfg.Reflect {
		e.buildReflection()
	}
	return e, nil
}

// buildReflection mirrors boundary-adjacent samples with their individual
// bandwidths.
func (e *VariableEstimator) buildReflection() {
	support := e.k.Support()
	for i, x := range e.sorted {
		reach := e.hs[i] * support
		if x-e.lo < reach {
			e.refl = append(e.refl, 2*e.lo-x)
			e.reflHs = append(e.reflHs, e.hs[i])
		}
		if e.hi-x < reach {
			e.refl = append(e.refl, 2*e.hi-x)
			e.reflHs = append(e.reflHs, e.hs[i])
		}
	}
}

// Selectivity returns the estimated selectivity σ̂(a,b) ∈ [0,1].
func (e *VariableEstimator) Selectivity(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) || b < a {
		return 0
	}
	if e.reflect {
		a = math.Max(a, e.lo)
		b = math.Min(b, e.hi)
		if b < a {
			return 0
		}
	}
	// Per-sample bandwidths break the single-window fast path; restrict
	// the scan to samples within maxH·support of the query instead.
	reach := e.maxH * e.k.Support()
	sum := e.sumWindow(e.sorted, e.hs, a, b, reach)
	sum += e.sumAll(e.refl, e.reflHs, a, b)
	s := sum / float64(e.n)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// sumWindow sums kernel masses for sorted samples within reach of [a, b].
func (e *VariableEstimator) sumWindow(sorted, hs []float64, a, b, reach float64) float64 {
	loIdx := sort.SearchFloat64s(sorted, a-reach)
	hiIdx := sort.Search(len(sorted), func(i int) bool { return sorted[i] > b+reach })
	sum := 0.0
	for i := loIdx; i < hiIdx; i++ {
		sum += e.k.CDF((b-sorted[i])/hs[i]) - e.k.CDF((a-sorted[i])/hs[i])
	}
	// Samples left of the window with very wide kernels? maxH bounds every
	// h, and reach = maxH·support, so none can contribute. (Asserted by
	// the cross-check against sumAll in tests.)
	return sum
}

// sumAll sums kernel masses over an unsorted slice (the small reflection
// set).
func (e *VariableEstimator) sumAll(xs, hs []float64, a, b float64) float64 {
	sum := 0.0
	for i, x := range xs {
		sum += e.k.CDF((b-x)/hs[i]) - e.k.CDF((a-x)/hs[i])
	}
	return sum
}

// Density returns the estimated density f̂(x).
func (e *VariableEstimator) Density(x float64) float64 {
	if e.reflect && (x < e.lo || x > e.hi) {
		return 0
	}
	reach := e.maxH * e.k.Support()
	loIdx := sort.SearchFloat64s(e.sorted, x-reach)
	hiIdx := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x+reach })
	sum := 0.0
	for i := loIdx; i < hiIdx; i++ {
		sum += e.k.Eval((x-e.sorted[i])/e.hs[i]) / e.hs[i]
	}
	for i, r := range e.refl {
		sum += e.k.Eval((x-r)/e.reflHs[i]) / e.reflHs[i]
	}
	return sum / float64(e.n)
}

// Bandwidths returns a copy of the per-sample bandwidths (sorted-sample
// order), for diagnostics.
func (e *VariableEstimator) Bandwidths() []float64 {
	return append([]float64(nil), e.hs...)
}

// SampleSize returns the number of samples.
func (e *VariableEstimator) SampleSize() int { return e.n }

// Name identifies the estimator in experiment output.
func (e *VariableEstimator) Name() string {
	return "variable-kernel(" + e.k.Name() + ")"
}
