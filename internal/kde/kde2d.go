package kde

import (
	"fmt"
	"math"

	"selest/internal/kernel"
)

// Estimator2D estimates the selectivity of two-dimensional range queries
// with a product kernel
//
//	f̂(x,y) = 1/(n·hx·hy) Σ K((x−Xi)/hx)·K((y−Yi)/hy)
//
// and per-axis bandwidths. This implements the first item of the paper's
// future-work list ("multidimensional kernel estimators to estimate the
// selectivity of multidimensional range queries"). Boundary repair uses
// per-axis reflection; the Simonoff–Dong family does not factorise over
// axes, so boundary kernels are a 1-D-only feature.
type Estimator2D struct {
	xs, ys []float64 // paired samples, in insertion order
	n      int
	hx, hy float64
	k      kernel.Kernel
	// Optional reflection domain; reflect is false when unset.
	reflect            bool
	loX, hiX, loY, hiY float64
}

// Config2D parameterises a two-dimensional kernel estimator.
type Config2D struct {
	// Kernel is the per-axis smoothing kernel; nil defaults to Epanechnikov.
	Kernel kernel.Kernel
	// BandwidthX and BandwidthY are the per-axis smoothing parameters.
	BandwidthX, BandwidthY float64
	// Reflect enables per-axis sample reflection at the given domain.
	Reflect            bool
	LoX, HiX, LoY, HiY float64
}

// New2D builds a 2-D estimator from paired samples (copied).
func New2D(xs, ys []float64, cfg Config2D) (*Estimator2D, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("kde: need equal, non-zero sample slices, got %d/%d", len(xs), len(ys))
	}
	if cfg.BandwidthX <= 0 || cfg.BandwidthY <= 0 {
		return nil, fmt.Errorf("kde: 2-D bandwidths must be positive, got (%v, %v)", cfg.BandwidthX, cfg.BandwidthY)
	}
	k := cfg.Kernel
	if k == nil {
		k = kernel.Epanechnikov{}
	}
	if cfg.Reflect && (cfg.LoX >= cfg.HiX || cfg.LoY >= cfg.HiY) {
		return nil, fmt.Errorf("kde: 2-D reflection needs proper domains")
	}
	return &Estimator2D{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		n:  len(xs),
		hx: cfg.BandwidthX, hy: cfg.BandwidthY,
		k:       k,
		reflect: cfg.Reflect,
		loX:     cfg.LoX, hiX: cfg.HiX, loY: cfg.LoY, hiY: cfg.HiY,
	}, nil
}

// Selectivity returns the estimated fraction of records with
// ax <= X <= bx and ay <= Y <= by.
//
// The product kernel factorises the integral per sample:
// ∫∫ = [F((bx−Xi)/hx) − F((ax−Xi)/hx)] · [F((by−Yi)/hy) − F((ay−Yi)/hy)].
func (e *Estimator2D) Selectivity(ax, bx, ay, by float64) float64 {
	if bx < ax || by < ay {
		return 0
	}
	if e.reflect {
		ax, bx = math.Max(ax, e.loX), math.Min(bx, e.hiX)
		ay, by = math.Max(ay, e.loY), math.Min(by, e.hiY)
		if bx < ax || by < ay {
			return 0
		}
	}
	sum := 0.0
	for i := 0; i < e.n; i++ {
		sum += e.massX(ax, bx, e.xs[i]) * e.massY(ay, by, e.ys[i])
	}
	s := sum / float64(e.n)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// massX is the x-axis kernel mass of a sample over [a,b], with reflection.
func (e *Estimator2D) massX(a, b, x float64) float64 {
	m := e.k.CDF((b-x)/e.hx) - e.k.CDF((a-x)/e.hx)
	if e.reflect {
		for _, mx := range []float64{2*e.loX - x, 2*e.hiX - x} {
			m += e.k.CDF((b-mx)/e.hx) - e.k.CDF((a-mx)/e.hx)
		}
	}
	return m
}

// massY is the y-axis kernel mass of a sample over [a,b], with reflection.
func (e *Estimator2D) massY(a, b, y float64) float64 {
	m := e.k.CDF((b-y)/e.hy) - e.k.CDF((a-y)/e.hy)
	if e.reflect {
		for _, my := range []float64{2*e.loY - y, 2*e.hiY - y} {
			m += e.k.CDF((b-my)/e.hy) - e.k.CDF((a-my)/e.hy)
		}
	}
	return m
}

// Density returns the estimated joint density f̂(x, y).
func (e *Estimator2D) Density(x, y float64) float64 {
	if e.reflect && (x < e.loX || x > e.hiX || y < e.loY || y > e.hiY) {
		return 0
	}
	sum := 0.0
	for i := 0; i < e.n; i++ {
		kx := e.k.Eval((x - e.xs[i]) / e.hx)
		if e.reflect {
			kx += e.k.Eval((x-(2*e.loX-e.xs[i]))/e.hx) + e.k.Eval((x-(2*e.hiX-e.xs[i]))/e.hx)
		}
		if kx == 0 {
			continue
		}
		ky := e.k.Eval((y - e.ys[i]) / e.hy)
		if e.reflect {
			ky += e.k.Eval((y-(2*e.loY-e.ys[i]))/e.hy) + e.k.Eval((y-(2*e.hiY-e.ys[i]))/e.hy)
		}
		sum += kx * ky
	}
	return sum / (float64(e.n) * e.hx * e.hy)
}

// SampleSize returns the number of samples.
func (e *Estimator2D) SampleSize() int { return e.n }

// Name identifies the estimator in experiment output.
func (e *Estimator2D) Name() string { return "kernel2d(" + e.k.Name() + ")" }
