package kde_test

// Query-engine benchmarks: the Θ(n) reference evaluator, the O(log n + k)
// edge scan, the O(log n) prefix-moment closed form, and the batch sweep,
// at n ∈ {1e4, 1e5, 1e6} with the DPI bandwidth the production
// configuration uses. `make bench` converts the output to BENCH_query.json.
//
// This file lives in package kde_test because the DPI rule comes from
// internal/bandwidth, which itself imports internal/kde.

import (
	"math"
	"sync"
	"testing"

	"selest/internal/bandwidth"
	"selest/internal/kde"
	"selest/internal/kernel"
	"selest/internal/xrand"
)

type queryBenchSetup struct {
	est     *kde.Estimator
	queries []kde.Range
}

var (
	queryBenchMu    sync.Mutex
	queryBenchCache = map[int]*queryBenchSetup{}
)

// querySetup builds (once per size) a reflect-mode estimator over clustered
// integer data on [0, 2^22) with the DPI(2) bandwidth, plus a fixed 1%
// query workload.
func querySetup(b *testing.B, n int) *queryBenchSetup {
	b.Helper()
	queryBenchMu.Lock()
	defer queryBenchMu.Unlock()
	if s, ok := queryBenchCache[n]; ok {
		return s
	}
	const span = float64(1 << 22)
	r := xrand.New(uint64(n) | 5)
	xs := make([]float64, n)
	for i := range xs {
		c := span * (0.2 + 0.6*float64(i%5)/5)
		xs[i] = math.Floor(math.Min(math.Max(c+(r.Float64()-0.5)*span*0.1, 0), span-1))
	}
	h, err := bandwidth.DPIBandwidth(xs, kernel.Epanechnikov{}, 2, 0, span)
	if err != nil {
		b.Fatal(err)
	}
	est, err := kde.New(xs, kde.Config{
		Bandwidth: h, Boundary: kde.BoundaryReflect, DomainLo: 0, DomainHi: span,
	})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]kde.Range, 256)
	for i := range queries {
		a := r.Float64() * span * 0.99
		queries[i] = kde.Range{A: a, B: a + 0.01*span}
	}
	s := &queryBenchSetup{est: est, queries: queries}
	queryBenchCache[n] = s
	return s
}

var benchSizes = []struct {
	name string
	n    int
}{{"n=10000", 1e4}, {"n=100000", 1e5}, {"n=1000000", 1e6}}

func BenchmarkQueryLinear(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			s := querySetup(b, sz.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := s.queries[i%len(s.queries)]
				sinkSelectivity = s.est.SelectivityLinear(q.A, q.B)
			}
		})
	}
}

func BenchmarkQueryEdgeScan(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			s := querySetup(b, sz.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := s.queries[i%len(s.queries)]
				sinkSelectivity = s.est.SelectivityEdgeScan(q.A, q.B)
			}
		})
	}
}

func BenchmarkQueryMoment(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			s := querySetup(b, sz.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := s.queries[i%len(s.queries)]
				sinkSelectivity = s.est.Selectivity(q.A, q.B)
			}
		})
	}
}

func BenchmarkQueryBatch(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			s := querySetup(b, sz.n)
			dst := make([]float64, 0, len(s.queries))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := s.est.SelectivityBatchInto(dst, s.queries)
				sinkSelectivity = out[0]
			}
			b.StopTimer()
			// Report per-query cost so the batch rows compare directly with
			// the single-query benchmarks.
			perQuery := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(s.queries))
			b.ReportMetric(perQuery, "ns/query")
		})
	}
}

var sinkSelectivity float64
