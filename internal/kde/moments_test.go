package kde

import (
	"math"
	"sort"
	"testing"

	"selest/internal/kernel"
	"selest/internal/xrand"
)

// momentTol is the agreement budget between the prefix-moment closed form
// and the Θ(n) reference evaluator (the acceptance bar of the query-engine
// redesign).
const momentTol = 1e-9

// sampleCase is one sample-set shape of the moment-path corpus.
type sampleCase struct {
	name    string
	samples []float64
	lo, hi  float64
}

// momentCorpus builds the shapes the closed form must survive: smooth
// uniform data, tight clusters (huge edge windows), constant data (zero
// central moments), wide integer domains (the X³ cancellation regime), and
// offset magnitudes far from zero.
func momentCorpus(t testing.TB) []sampleCase {
	t.Helper()
	r := xrand.New(99)
	uniform := func(n int, lo, hi float64) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = lo + r.Float64()*(hi-lo)
		}
		return xs
	}
	intAligned := func(n int, lo, hi float64) []float64 {
		xs := uniform(n, lo, hi)
		for i := range xs {
			xs[i] = math.Floor(xs[i])
		}
		return xs
	}
	clustered := func(n int, lo, hi float64) []float64 {
		centers := []float64{lo + 0.2*(hi-lo), lo + 0.21*(hi-lo), lo + 0.8*(hi-lo)}
		xs := make([]float64, n)
		for i := range xs {
			c := centers[i%len(centers)]
			x := c + (r.Float64()-0.5)*(hi-lo)*1e-3
			xs[i] = math.Min(math.Max(x, lo), hi)
		}
		return xs
	}
	constant := func(n int, v float64) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = v
		}
		return xs
	}
	p20 := math.Exp2(20)
	p31 := math.Exp2(31)
	return []sampleCase{
		{"uniform-small", uniform(700, 0, 100), 0, 100},
		{"uniform-2^20", intAligned(1500, 0, p20), 0, p20},
		{"uniform-2^31", intAligned(1500, 0, p31), 0, p31},
		{"clustered-2^31", clustered(1200, 0, p31), 0, p31},
		{"constant", constant(500, 12345.0), 0, math.Exp2(15)},
		{"offset-1e12", uniform(800, 1e12, 1e12+4096), 1e12, 1e12 + 4096},
		{"two-points", []float64{3, 97}, 0, 100},
	}
}

// queriesFor draws a query mix for a case: interior, boundary-hugging,
// narrower than h, inverted, and NaN.
func queriesFor(r *xrand.RNG, lo, hi, h float64, n int) []Range {
	span := hi - lo
	qs := make([]Range, 0, n+6)
	for i := 0; i < n; i++ {
		a := lo + (r.Float64()*1.2-0.1)*span
		w := r.Float64() * 0.3 * span
		qs = append(qs, Range{a, a + w})
	}
	qs = append(qs,
		Range{lo, lo + 0.01*span},                 // left boundary
		Range{hi - 0.01*span, hi},                 // right boundary
		Range{lo + 0.4*span, lo + 0.4*span + h/5}, // narrower than h
		Range{lo + 0.7*span, lo + 0.2*span},       // inverted: must be 0
		Range{math.NaN(), lo + 0.5*span},          // NaN: must be 0
		Range{lo - span, hi + span},               // hull-covering
	)
	return qs
}

// TestMomentPathMatchesLinear is the core acceptance property: for every
// corpus shape and boundary mode, Selectivity (moment path), the edge scan
// and the Θ(n) reference agree within momentTol.
func TestMomentPathMatchesLinear(t *testing.T) {
	for _, sc := range momentCorpus(t) {
		r := xrand.New(7)
		span := sc.hi - sc.lo
		for _, mode := range []BoundaryMode{BoundaryNone, BoundaryReflect, BoundaryKernels} {
			for _, hFrac := range []float64{0.003, 0.04, 0.3} {
				h := hFrac * span
				if h <= 0 {
					h = 1
				}
				e, err := New(sc.samples, Config{
					Bandwidth: h, Boundary: mode, DomainLo: sc.lo, DomainHi: sc.hi,
				})
				if err != nil {
					t.Fatalf("%s/%v/h=%v: %v", sc.name, mode, h, err)
				}
				if e.moments == nil {
					t.Fatalf("%s: moment index unexpectedly disabled", sc.name)
				}
				for _, q := range queriesFor(r, sc.lo, sc.hi, h, 60) {
					fast := e.Selectivity(q.A, q.B)
					scan := e.SelectivityEdgeScan(q.A, q.B)
					lin := e.SelectivityLinear(q.A, q.B)
					if math.Abs(fast-scan) > momentTol {
						t.Fatalf("%s/%v/h=%v: moment %v vs edge-scan %v for Q(%v,%v)",
							sc.name, mode, h, fast, scan, q.A, q.B)
					}
					if math.Abs(fast-lin) > momentTol {
						t.Fatalf("%s/%v/h=%v: moment %v vs linear %v for Q(%v,%v)",
							sc.name, mode, h, fast, lin, q.A, q.B)
					}
				}
			}
		}
	}
}

// TestMomentFallbackOnExtremeMagnitude: magnitudes whose cubes would
// overflow must disable the index, and the estimator must still answer
// (through the edge scan) in agreement with the linear reference.
func TestMomentFallbackOnExtremeMagnitude(t *testing.T) {
	samples := []float64{-2e100, -1e100, 0, 1e100, 2e100}
	e, err := New(samples, Config{Bandwidth: 5e99})
	if err != nil {
		t.Fatal(err)
	}
	if e.moments != nil {
		t.Fatal("moment index should be disabled at 1e100 magnitudes")
	}
	got := e.Selectivity(-1.5e100, 1.5e100)
	want := e.SelectivityLinear(-1.5e100, 1.5e100)
	if math.Abs(got-want) > momentTol {
		t.Fatalf("fallback disagrees with linear: %v vs %v", got, want)
	}
	// Non-polynomial kernels never build the index.
	g, err := New([]float64{1, 2, 3}, Config{Bandwidth: 1, Kernel: kernel.Gaussian{}})
	if err != nil {
		t.Fatal(err)
	}
	if g.moments != nil {
		t.Fatal("moment index requires the Epanechnikov kernel")
	}
}

// TestStripMomentMatchesLoop checks the boundary-strip closed form against
// the per-sample BoundaryStripIntegral loop directly, sweeping clip
// configurations (u1 < 0, u2 > 1, sub-strip windows, degenerate windows).
func TestStripMomentMatchesLoop(t *testing.T) {
	r := xrand.New(17)
	samples := make([]float64, 900)
	for i := range samples {
		samples[i] = math.Floor(r.Float64() * math.Exp2(22))
	}
	e, err := New(samples, Config{
		Bandwidth: math.Exp2(22) * 0.05, Boundary: BoundaryKernels,
		DomainLo: 0, DomainHi: math.Exp2(22),
	})
	if err != nil {
		t.Fatal(err)
	}
	loop := func(u1, u2 float64, left bool) float64 {
		sum := 0.0
		for _, x := range e.sorted {
			s := (x - e.lo) / e.h
			if !left {
				s = (e.hi - x) / e.h
			}
			sum += kernel.BoundaryStripIntegral(s, u1, u2)
		}
		return sum
	}
	for trial := 0; trial < 300; trial++ {
		u1 := r.Float64()*2.4 - 1.2
		u2 := u1 + r.Float64()*1.4
		for _, left := range []bool{true, false} {
			got := e.stripSumMoment(u1, u2, left)
			want := loop(u1, u2, left)
			if math.Abs(got-want) > momentTol*float64(e.n) {
				t.Fatalf("strip(left=%v, u1=%v, u2=%v): moment %v vs loop %v",
					left, u1, u2, got, want)
			}
		}
	}
}

// TestBatchMatchesSingleQueries: batch answers must be bit-identical to
// per-query Selectivity, across modes and including degenerate queries.
func TestBatchMatchesSingleQueries(t *testing.T) {
	for _, sc := range momentCorpus(t) {
		r := xrand.New(23)
		for _, mode := range []BoundaryMode{BoundaryNone, BoundaryReflect, BoundaryKernels} {
			h := (sc.hi - sc.lo) * 0.05
			if h <= 0 {
				h = 1
			}
			e, err := New(sc.samples, Config{
				Bandwidth: h, Boundary: mode, DomainLo: sc.lo, DomainHi: sc.hi,
			})
			if err != nil {
				t.Fatal(err)
			}
			qs := queriesFor(r, sc.lo, sc.hi, h, 50)
			got := e.SelectivityBatch(qs)
			if len(got) != len(qs) {
				t.Fatalf("batch returned %d results for %d queries", len(got), len(qs))
			}
			for i, q := range qs {
				want := e.Selectivity(q.A, q.B)
				if got[i] != want && !(math.IsNaN(got[i]) && math.IsNaN(want)) {
					t.Fatalf("%s/%v: batch[%d] = %v, single = %v for Q(%v,%v)",
						sc.name, mode, i, got[i], want, q.A, q.B)
				}
			}
			// The Into variant reuses dst without reallocating.
			dst := make([]float64, 0, len(qs))
			out := e.SelectivityBatchInto(dst, qs)
			if &out[0] != &dst[:1][0] {
				t.Fatal("SelectivityBatchInto reallocated a sufficient dst")
			}
		}
	}
}

// TestBatchFallbackKernels: non-moment configurations answer through the
// per-query path and still match exactly.
func TestBatchFallbackKernels(t *testing.T) {
	r := xrand.New(31)
	samples := make([]float64, 400)
	for i := range samples {
		samples[i] = r.Float64() * 1000
	}
	e, err := New(samples, Config{Bandwidth: 25, Kernel: kernel.Gaussian{}})
	if err != nil {
		t.Fatal(err)
	}
	qs := queriesFor(r, 0, 1000, 25, 20)
	got := e.SelectivityBatch(qs)
	for i, q := range qs {
		if want := e.Selectivity(q.A, q.B); got[i] != want {
			t.Fatalf("gaussian batch[%d] = %v, single = %v", i, got[i], want)
		}
	}
	if out := e.SelectivityBatch(nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
}

// TestGallopMatchesBinarySearch: the batch sweep's resumable searches must
// agree with sort.SearchFloat64s from every starting position.
func TestGallopMatchesBinarySearch(t *testing.T) {
	r := xrand.New(41)
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = math.Floor(r.Float64() * 500)
	}
	sort.Float64s(xs)
	for trial := 0; trial < 2000; trial++ {
		v := -10 + r.Float64()*520
		wantGE := sort.SearchFloat64s(xs, v)
		wantGT := sort.Search(len(xs), func(i int) bool { return xs[i] > v })
		from := int(r.Uint64() % uint64(wantGE+1))
		if got := advanceGE(xs, from, v); got != wantGE {
			t.Fatalf("advanceGE(from=%d, v=%v) = %d, want %d", from, v, got, wantGE)
		}
		fromGT := int(r.Uint64() % uint64(wantGT+1))
		if got := advanceGT(xs, fromGT, v); got != wantGT {
			t.Fatalf("advanceGT(from=%d, v=%v) = %d, want %d", fromGT, v, got, wantGT)
		}
	}
}

// TestDDArithmetic pins the error-free transforms on values that defeat
// plain float64 (the classic Kahan cancellation pairs).
func TestDDArithmetic(t *testing.T) {
	// (1e16 + 1) − 1e16 == 1 exactly in dd, 0 or 2 in float64.
	s := twoSum(1e16, 1)
	d := s.sub(dd{1e16, 0})
	if d.val() != 1 {
		t.Fatalf("dd cancellation: got %v, want 1", d.val())
	}
	// twoDiff is exact: (x − c) + c == x.
	x, c := 12345678.9, 98765.4321
	y := twoDiff(x, c)
	back := y.add(dd{c, 0})
	if back.val() != x {
		t.Fatalf("twoDiff roundtrip: %v != %v", back.val(), x)
	}
	// mul carries the low-order product bits.
	p := dd{1e8 + 1, 0}.mul(dd{1e8 - 1, 0})
	if p.val() != 1e16-1 {
		t.Fatalf("dd mul: got %v, want %v", p.val(), 1e16-1)
	}
}

// FuzzMomentMatchesLinear drives the moment path against the Θ(n)
// reference with fuzzer-chosen sample shapes, bandwidths and raw query
// bits (so NaN/Inf/inverted queries are reachable).
func FuzzMomentMatchesLinear(f *testing.F) {
	f.Add(uint64(1), uint16(200), uint8(20), 0.05, uint64(0), uint64(0), uint8(0))
	f.Add(uint64(2), uint16(1000), uint8(31), 0.01, math.Float64bits(1000), math.Float64bits(2000), uint8(1))
	f.Add(uint64(3), uint16(50), uint8(8), 0.5, math.Float64bits(math.NaN()), math.Float64bits(10), uint8(2))
	f.Add(uint64(4), uint16(300), uint8(15), 0.002, math.Float64bits(100), math.Float64bits(90), uint8(1))
	f.Add(uint64(5), uint16(2), uint8(12), 0.9, math.Float64bits(1), math.Float64bits(1), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, domPow uint8, hFrac float64, aBits, bBits uint64, modeRaw uint8) {
		if n == 0 {
			n = 1
		}
		if n > 3000 {
			n = 3000
		}
		if domPow < 4 {
			domPow = 4
		}
		if domPow > 40 {
			domPow = 40
		}
		if math.IsNaN(hFrac) || hFrac <= 0 || hFrac > 1 {
			hFrac = 0.05
		}
		span := math.Exp2(float64(domPow))
		r := xrand.New(seed | 1)
		xs := make([]float64, int(n))
		switch seed % 3 {
		case 0: // uniform integers
			for i := range xs {
				xs[i] = math.Floor(r.Float64() * span)
			}
		case 1: // tight clusters
			c1, c2 := r.Float64()*span, r.Float64()*span
			for i := range xs {
				c := c1
				if i%2 == 0 {
					c = c2
				}
				xs[i] = math.Min(math.Max(c+(r.Float64()-0.5)*span*1e-4, 0), span)
			}
		default: // constant
			v := math.Floor(r.Float64() * span)
			for i := range xs {
				xs[i] = v
			}
		}
		mode := []BoundaryMode{BoundaryNone, BoundaryReflect, BoundaryKernels}[modeRaw%3]
		h := hFrac * span
		e, err := New(xs, Config{Bandwidth: h, Boundary: mode, DomainLo: 0, DomainHi: span})
		if err != nil {
			t.Skip()
		}
		a, b := math.Float64frombits(aBits), math.Float64frombits(bBits)
		if math.IsInf(a, 0) || math.IsInf(b, 0) {
			// ±Inf queries are legal but the Θ(n) reference evaluates CDF at
			// ±Inf fine; keep them.
		}
		fast := e.Selectivity(a, b)
		lin := e.SelectivityLinear(a, b)
		scan := e.SelectivityEdgeScan(a, b)
		if math.IsNaN(a) || math.IsNaN(b) || b < a {
			if fast != 0 || lin != 0 || scan != 0 {
				t.Fatalf("degenerate Q(%v,%v) must be 0: fast=%v lin=%v scan=%v", a, b, fast, lin, scan)
			}
			return
		}
		if math.Abs(fast-lin) > momentTol {
			t.Fatalf("mode=%v n=%d dom=2^%d h=%v: moment %v vs linear %v for Q(%v,%v)",
				mode, n, domPow, h, fast, lin, a, b)
		}
		if math.Abs(fast-scan) > momentTol {
			t.Fatalf("mode=%v n=%d dom=2^%d h=%v: moment %v vs edge-scan %v for Q(%v,%v)",
				mode, n, domPow, h, fast, scan, a, b)
		}
		if fast < 0 || fast > 1 {
			t.Fatalf("selectivity %v outside [0,1]", fast)
		}
	})
}
