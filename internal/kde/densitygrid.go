package kde

// Batched grid evaluation of the density: the fit path evaluates pilot
// densities on regular grids (the DPI roughness functionals ∫f'², ∫f”²
// over 512 points, the hybrid change-point scan), and each pointwise
// Density(x) call re-runs two binary searches and an O(k) window loop —
// with pilot bandwidths the windows overlap heavily, so m grid points
// cost O(m·k) kernel evaluations. DensityGrid answers the whole grid in
// one ascending sweep: the window cursors only ever move forward
// (galloping probes, as in the batch query sweep), and each point is an
// O(1) prefix-moment closed form (momentIndex.densitySum), for O(m)
// evaluations plus O(n) total cursor movement regardless of bandwidth.

import (
	"math"

	"selest/internal/telemetry"
	"selest/internal/xmath"
)

// DensityGrid returns the estimated density f̂ at m equally spaced points
// spanning [lo, hi] inclusive (xmath.Linspace semantics; m < 2 yields the
// single point lo). Each value matches the corresponding Density call to
// within double-double closed-form accuracy (≤1e-12 relative — the
// property test pins it); kernels or magnitudes without a moment index
// fall back to pointwise evaluation, keeping the API total.
func (e *Estimator) DensityGrid(lo, hi float64, m int) []float64 {
	xs := xmath.Linspace(lo, hi, m)
	out := make([]float64, len(xs))
	if telemetry.Enabled() {
		fitGridEvals.Add(int64(len(xs)))
	}
	if e.moments == nil {
		for i, x := range xs {
			out[i] = e.Density(x)
		}
		return out
	}
	switch e.mode {
	case BoundaryKernels:
		e.densityGridBoundaryKernels(xs, out)
	case BoundaryReflect:
		e.densityGridReflect(xs, out)
	default:
		inv := 1 / (float64(e.n) * e.h)
		var cl, cr int
		for i, x := range xs {
			cl = advanceGE(e.moments.xs, cl, x-e.h)
			cr = advanceGT(e.moments.xs, cr, x+e.h)
			out[i] = e.moments.densitySum(cl, cr, x, e.h) * inv
		}
	}
	return out
}

// densityGridReflect sweeps the original and mirrored moment indexes in
// one pass; points outside the domain evaluate to 0, matching Density.
func (e *Estimator) densityGridReflect(xs, out []float64) {
	inv := 1 / (float64(e.n) * e.h)
	var cl, cr, rl, rr int
	for i, x := range xs {
		if x < e.lo || x > e.hi {
			out[i] = 0
			continue
		}
		cl = advanceGE(e.moments.xs, cl, x-e.h)
		cr = advanceGT(e.moments.xs, cr, x+e.h)
		sum := e.moments.densitySum(cl, cr, x, e.h)
		if e.reflMoments != nil {
			rl = advanceGE(e.reflMoments.xs, rl, x-e.h)
			rr = advanceGT(e.reflMoments.xs, rr, x+e.h)
			sum += e.reflMoments.densitySum(rl, rr, x, e.h)
		}
		out[i] = sum * inv
	}
}

// densityGridBoundaryKernels sweeps the interior through the moment
// closed form and evaluates the two boundary strips pointwise — strip
// points see only the samples within 2h of their boundary, so the strips
// cost O(strip points · boundary samples), unchanged from Density.
func (e *Estimator) densityGridBoundaryKernels(xs, out []float64) {
	mid := 0.5 * (e.lo + e.hi)
	leftEnd := math.Min(e.lo+e.h, mid)
	rightStart := math.Max(e.hi-e.h, mid)
	inv := 1 / (float64(e.n) * e.h)
	var cl, cr int
	for i, x := range xs {
		switch {
		case x < e.lo || x > e.hi:
			out[i] = 0
		case x < leftEnd || x > rightStart:
			out[i] = e.densityBoundaryKernels(x)
		default:
			cl = advanceGE(e.moments.xs, cl, x-e.h)
			cr = advanceGT(e.moments.xs, cr, x+e.h)
			out[i] = e.moments.densitySum(cl, cr, x, e.h) * inv
		}
	}
}

// densityGridPointwise is the ablation reference for DensityGrid: the
// same grid answered by m independent Density calls. Benches and the
// property test compare against it.
func (e *Estimator) densityGridPointwise(lo, hi float64, m int) []float64 {
	xs := xmath.Linspace(lo, hi, m)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = e.Density(x)
	}
	return out
}
