package kde

import (
	"testing"

	"selest/internal/xmath"
)

// Edge branches the main suites do not reach: clamp paths, out-of-domain
// density evaluations, and the linear evaluator's boundary-mode handling.

func TestSelectivityClampPaths(t *testing.T) {
	// Boundary kernels can push a near-full-domain estimate above 1
	// (clamped) and produce tiny negative lobes (clamped at 0).
	samples := uniformSamples(t, 200, 0, 10, 50)
	e, err := New(samples, Config{Bandwidth: 3, Boundary: BoundaryKernels, DomainLo: 0, DomainHi: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Selectivity(0, 10); got > 1 || got < 0.95 {
		t.Fatalf("full-domain σ̂ = %v", got)
	}
	// The unclamped value is allowed outside [0,1].
	raw := e.SelectivityUnclamped(0, 10)
	if raw < 0.95 || raw > 1.1 {
		t.Fatalf("unclamped full-domain = %v", raw)
	}
}

func TestDensityOutsideDomainPerMode(t *testing.T) {
	samples := uniformSamples(t, 100, 0, 10, 51)
	for _, mode := range []BoundaryMode{BoundaryReflect, BoundaryKernels} {
		e, err := New(samples, Config{Bandwidth: 1, Boundary: mode, DomainLo: 0, DomainHi: 10})
		if err != nil {
			t.Fatal(err)
		}
		if d := e.Density(-0.5); d != 0 {
			t.Fatalf("%s: density below domain = %v", mode, d)
		}
		if d := e.Density(10.5); d != 0 {
			t.Fatalf("%s: density above domain = %v", mode, d)
		}
	}
}

func TestSelectivityLinearBoundaryModes(t *testing.T) {
	samples := uniformSamples(t, 300, 0, 10, 52)
	// Reflect mode: linear evaluator clips to the domain like the fast path.
	e, err := New(samples, Config{Bandwidth: 1, Boundary: BoundaryReflect, DomainLo: 0, DomainHi: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.SelectivityLinear(-5, 15), e.Selectivity(-5, 15); !xmath.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("linear clipping: %v vs %v", got, want)
	}
	if e.SelectivityLinear(7, 3) != 0 {
		t.Fatal("linear inverted query should be 0")
	}
	// A reflect-mode query entirely outside the domain.
	if e.SelectivityLinear(20, 30) != 0 {
		t.Fatal("linear out-of-domain query should be 0")
	}
	// Boundary-kernel mode: the Θ(n) strip loops must agree with the
	// accelerated evaluator.
	bk, err := New(samples, Config{Bandwidth: 1, Boundary: BoundaryKernels, DomainLo: 0, DomainHi: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := bk.SelectivityLinear(2, 5), bk.Selectivity(2, 5); !xmath.AlmostEqual(got, want, 1e-9) {
		t.Fatalf("boundary-kernel linear reference: %v vs %v", got, want)
	}
}

func TestEstimator2DInvertedAndOutOfDomain(t *testing.T) {
	e, err := New2D([]float64{1, 2}, []float64{1, 2}, Config2D{
		BandwidthX: 1, BandwidthY: 1, Reflect: true, LoX: 0, HiX: 3, LoY: 0, HiY: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Selectivity(2, 1, 0, 3) != 0 {
		t.Fatal("inverted x should be 0")
	}
	if e.Selectivity(0, 3, 2, 1) != 0 {
		t.Fatal("inverted y should be 0")
	}
	if e.Selectivity(10, 20, 10, 20) != 0 {
		t.Fatal("out-of-domain window should be 0")
	}
	if e.Density(-1, 1) != 0 || e.Density(1, 4) != 0 {
		t.Fatal("out-of-domain density should be 0")
	}
}

func TestEstimatorNDOutOfDomainDensity(t *testing.T) {
	e, err := NewND([][]float64{{1, 1}}, ConfigND{
		Bandwidths: []float64{1, 1}, Reflect: true,
		Lo: []float64{0, 0}, Hi: []float64{2, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.Density([]float64{-1, 1})
	if err != nil || d != 0 {
		t.Fatalf("out-of-domain ND density = (%v, %v)", d, err)
	}
}

func TestVariableSelectivityClipping(t *testing.T) {
	samples := uniformSamples(t, 200, 0, 10, 53)
	e, err := NewVariable(samples, VariableConfig{PilotBandwidth: 1, Reflect: true, DomainLo: 0, DomainHi: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.Selectivity(-5, 15), e.Selectivity(0, 10); !xmath.AlmostEqual(got, want, 1e-12) {
		t.Fatalf("variable clipping: %v vs %v", got, want)
	}
	if e.Selectivity(20, 30) != 0 {
		t.Fatal("out-of-domain variable query should be 0")
	}
	if e.Selectivity(7, 3) != 0 {
		t.Fatal("inverted variable query should be 0")
	}
	if e.Density(-1) != 0 || e.Density(11) != 0 {
		t.Fatal("out-of-domain variable density should be 0")
	}
}
