package kde

// The fit-path engine's shared context: the expensive, bandwidth- and
// boundary-independent state of one sample set — the sorted copy and the
// centered prefix-moment index — built once and reused by every estimator
// fitted over that set. The paper's smoothing-parameter rules are
// iterative (the DPI rule builds a pilot density per step, §4.3) and the
// grid searches (LSCV, the oracle h-opt columns) fit dozens of candidate
// estimators; without a context each fit re-sorts and re-indexes the same
// data. The same applies to the hybrid estimator (§3.3), whose per-bin
// sample segments are contiguous slices of one sorted array.
//
// What stays per-estimator: the reflection buffer and its moment index
// (mirror membership depends on the bandwidth) and the boundary-strip log
// prefixes (they depend on the domain). Both are O(boundary samples), not
// O(n log n).

import (
	"fmt"
	"math"
	"sort"

	"selest/internal/fsort"
	"selest/internal/telemetry"
)

// FitContext caches the sorted sample set and its prefix-moment index for
// repeated estimator fits. It is immutable after construction and safe
// for concurrent use by any number of NewFromContext calls.
type FitContext struct {
	sorted  []float64
	moments *momentIndex // nil for magnitudes the closed form cannot trust
}

// NewFitContext builds a fit context from a sample set (copied, then
// sorted once — by the radix sort in internal/fsort, which the fit-path
// profile is dominated by at n = 10⁶).
func NewFitContext(samples []float64) (*FitContext, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("kde: empty sample set")
	}
	sorted := append([]float64(nil), samples...)
	fsort.Float64s(sorted)
	return newFitContextSorted(sorted), nil
}

// NewFitContextSorted builds a fit context over an already-sorted slice,
// which it aliases — the caller must not mutate it afterwards. This is
// the zero-copy entry for callers that already hold sorted data, such as
// the hybrid estimator's per-bin segments (contiguous sub-slices of one
// sorted array).
func NewFitContextSorted(sorted []float64) (*FitContext, error) {
	if len(sorted) == 0 {
		return nil, fmt.Errorf("kde: empty sample set")
	}
	if !sort.Float64sAreSorted(sorted) {
		return nil, fmt.Errorf("kde: NewFitContextSorted needs sorted input")
	}
	if telemetry.Enabled() {
		fitSortsAvoided.Inc()
	}
	return newFitContextSorted(sorted), nil
}

func newFitContextSorted(sorted []float64) *FitContext {
	return &FitContext{sorted: sorted, moments: newMomentIndex(sorted)}
}

// Sorted returns the context's sorted sample slice. It is shared state:
// callers must treat it as read-only.
func (c *FitContext) Sorted() []float64 { return c.sorted }

// SampleSize returns the number of samples in the context.
func (c *FitContext) SampleSize() int { return len(c.sorted) }

// NewEstimator fits an estimator from the context without re-sorting the
// samples or rebuilding the prefix-moment index. The estimator aliases
// the context's sorted slice and (for the Epanechnikov kernel) its moment
// index; only the bandwidth-dependent reflection set and the
// domain-dependent strip prefixes are built per call. Results are
// bit-identical to New over the same samples.
func (c *FitContext) NewEstimator(cfg Config) (*Estimator, error) {
	if telemetry.Enabled() {
		fitSortsAvoided.Inc()
	}
	// newSorted ignores the shared index for non-Epanechnikov kernels, so
	// passing it unconditionally is safe.
	return newSorted(c.sorted, cfg, c.moments)
}

// NewFromContext is the free-function spelling of FitContext.NewEstimator,
// mirroring New for call sites that read better with the config last.
func NewFromContext(c *FitContext, cfg Config) (*Estimator, error) {
	return c.NewEstimator(cfg)
}

// NewBetaEstimator fits a beta-kernel estimator (beta.go) from the
// context, reusing its sort and prefix-moment index. Results are
// bit-identical to NewBeta over the same samples.
func (c *FitContext) NewBetaEstimator(cfg BetaConfig) (*BetaEstimator, error) {
	if telemetry.Enabled() {
		fitSortsAvoided.Inc()
	}
	return newBetaSorted(c.sorted, cfg, c.moments)
}

// MomentSummary returns the sample mean and (population) variance. With a
// moment index the totals are an O(1) read off the centered prefix sums;
// otherwise one centered pass computes them. ok is false when the sample
// is empty or the result is not finite.
func (c *FitContext) MomentSummary() (mean, variance float64, ok bool) {
	n := len(c.sorted)
	if n == 0 {
		return 0, 0, false
	}
	nf := float64(n)
	if m := c.moments; m != nil {
		d := m.p1[n].val() / nf
		mean = m.c + d
		variance = m.p2[n].val()/nf - d*d
	} else {
		// Center on the hull midpoint, as the index would.
		center := 0.5*c.sorted[0] + 0.5*c.sorted[n-1]
		var s1, s2 float64
		for _, x := range c.sorted {
			d := x - center
			s1 += d
			s2 += d * d
		}
		d := s1 / nf
		mean = center + d
		variance = s2/nf - d*d
	}
	if variance < 0 {
		variance = 0
	}
	if math.IsNaN(mean) || math.IsInf(mean, 0) || math.IsNaN(variance) || math.IsInf(variance, 0) {
		return mean, variance, false
	}
	return mean, variance, true
}
