package kde

import (
	"math"
	"testing"

	"selest/internal/xmath"
	"selest/internal/xrand"
)

func TestNew2DValidation(t *testing.T) {
	if _, err := New2D(nil, nil, Config2D{BandwidthX: 1, BandwidthY: 1}); err == nil {
		t.Fatal("empty samples should error")
	}
	if _, err := New2D([]float64{1}, []float64{1, 2}, Config2D{BandwidthX: 1, BandwidthY: 1}); err == nil {
		t.Fatal("mismatched lengths should error")
	}
	if _, err := New2D([]float64{1}, []float64{1}, Config2D{BandwidthX: 0, BandwidthY: 1}); err == nil {
		t.Fatal("zero bandwidth should error")
	}
	if _, err := New2D([]float64{1}, []float64{1}, Config2D{BandwidthX: 1, BandwidthY: 1, Reflect: true}); err == nil {
		t.Fatal("reflection without domain should error")
	}
}

func TestSingleSample2D(t *testing.T) {
	e, err := New2D([]float64{0}, []float64{0}, Config2D{BandwidthX: 1, BandwidthY: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Selectivity(-1, 1, -1, 1); !xmath.AlmostEqual(got, 1, 1e-12) {
		t.Fatalf("whole-kernel 2D selectivity = %v, want 1", got)
	}
	// Quarter plane through the centre: ½ · ½.
	if got := e.Selectivity(0, 1, 0, 1); !xmath.AlmostEqual(got, 0.25, 1e-12) {
		t.Fatalf("quarter selectivity = %v, want 0.25", got)
	}
	if e.Selectivity(5, 6, 5, 6) != 0 {
		t.Fatal("distant query should be 0")
	}
	if e.Selectivity(1, -1, 0, 1) != 0 {
		t.Fatal("inverted range should be 0")
	}
}

func TestSelectivity2DAccuracy(t *testing.T) {
	// Uniform points on [0,100]²: a 20×20 interior box has selectivity 0.04.
	r := xrand.New(12)
	n := 4000
	xs, ys := make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64() * 100
		ys[i] = r.Float64() * 100
	}
	e, err := New2D(xs, ys, Config2D{BandwidthX: 8, BandwidthY: 8, Reflect: true, LoX: 0, HiX: 100, LoY: 0, HiY: 100})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Selectivity(40, 60, 40, 60)
	if math.Abs(got-0.04) > 0.012 {
		t.Fatalf("interior box estimate = %v, want ~0.04", got)
	}
	// Corner box: reflection must keep the estimate close to truth.
	corner := e.Selectivity(0, 20, 0, 20)
	if math.Abs(corner-0.04) > 0.015 {
		t.Fatalf("corner box estimate = %v, want ~0.04", corner)
	}
}

func TestSelectivity2DMatchesDensityIntegral(t *testing.T) {
	r := xrand.New(13)
	n := 200
	xs, ys := make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64() * 10
		ys[i] = r.Normal()*2 + 5
	}
	e, err := New2D(xs, ys, Config2D{BandwidthX: 1.5, BandwidthY: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 2-D Simpson via iterated 1-D integration.
	inner := func(x float64) float64 {
		return xmath.Simpson(func(y float64) float64 { return e.Density(x, y) }, 3, 7, 200)
	}
	want := xmath.Simpson(inner, 2, 6, 200)
	got := e.Selectivity(2, 6, 3, 7)
	if !xmath.AlmostEqual(got, want, 1e-3) {
		t.Fatalf("2-D selectivity %v vs density integral %v", got, want)
	}
}

func TestSelectivity2DClampsReflectQueries(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{1, 2, 3}
	e, err := New2D(xs, ys, Config2D{BandwidthX: 1, BandwidthY: 1, Reflect: true, LoX: 0, HiX: 4, LoY: 0, HiY: 4})
	if err != nil {
		t.Fatal(err)
	}
	whole := e.Selectivity(0, 4, 0, 4)
	ext := e.Selectivity(-10, 14, -10, 14)
	if !xmath.AlmostEqual(whole, ext, 1e-12) {
		t.Fatalf("extended query must clip: %v vs %v", whole, ext)
	}
	if !xmath.AlmostEqual(whole, 1, 1e-9) {
		t.Fatalf("whole-domain 2-D reflect selectivity = %v, want 1", whole)
	}
}

func TestEstimator2DAccessors(t *testing.T) {
	e, err := New2D([]float64{1}, []float64{2}, Config2D{BandwidthX: 1, BandwidthY: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.SampleSize() != 1 {
		t.Fatal("SampleSize wrong")
	}
	if e.Name() != "kernel2d(epanechnikov)" {
		t.Fatalf("Name = %q", e.Name())
	}
}
