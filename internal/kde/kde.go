// Package kde implements kernel selectivity estimation, the primary
// contribution of the paper: the selectivity of a range query Q(a,b) is
// estimated by integrating a kernel density estimate over [a,b]
// (paper eq. 6 and Algorithm 1), with optional boundary treatment by
// sample reflection or by Simonoff–Dong boundary kernels (paper §3.2.1).
//
// Evaluation uses the sorted-sample fast path the paper sketches: samples
// whose kernel lies entirely inside the query contribute exactly one and
// are counted by binary search; only the O(k) samples overlapping the query
// edges need explicit primitive evaluations, so a query costs
// O(log n + k) instead of Θ(n).
package kde

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"selest/internal/kernel"
	"selest/internal/telemetry"
)

// BoundaryMode selects how estimation near the domain boundaries is
// repaired (paper §3.2.1).
type BoundaryMode int

const (
	// BoundaryNone applies no correction; estimates near the boundaries
	// lose mass outside the domain (the paper's Fig. 3 error spikes).
	BoundaryNone BoundaryMode = iota
	// BoundaryReflect mirrors samples within one bandwidth of a boundary
	// back into the domain. The estimate is a proper density but is not
	// consistent at the boundary.
	BoundaryReflect
	// BoundaryKernels replaces the kernel with the Simonoff–Dong boundary
	// family within one bandwidth of a boundary. The estimate is
	// consistent but may locally integrate to slightly more than one.
	// This mode requires the Epanechnikov kernel (the closed-form strip
	// primitive is specific to it), matching the paper.
	BoundaryKernels
)

// String implements fmt.Stringer.
func (m BoundaryMode) String() string {
	switch m {
	case BoundaryNone:
		return "none"
	case BoundaryReflect:
		return "reflect"
	case BoundaryKernels:
		return "boundary-kernels"
	default:
		return fmt.Sprintf("BoundaryMode(%d)", int(m))
	}
}

// ParseBoundaryMode resolves a boundary-treatment name as written on a
// command line: "none", "reflect", or "kernels"/"boundary-kernels"
// (case-insensitive, surrounding space ignored).
func ParseBoundaryMode(s string) (BoundaryMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none":
		return BoundaryNone, nil
	case "reflect":
		return BoundaryReflect, nil
	case "kernels", "boundary-kernels":
		return BoundaryKernels, nil
	default:
		return BoundaryNone, fmt.Errorf("kde: unknown boundary mode %q (valid: none, reflect, kernels)", s)
	}
}

// Config parameterises a kernel selectivity estimator.
type Config struct {
	// Kernel is the smoothing kernel; nil defaults to Epanechnikov.
	Kernel kernel.Kernel
	// Bandwidth is the smoothing parameter h; it must be positive.
	Bandwidth float64
	// Boundary selects the boundary treatment.
	Boundary BoundaryMode
	// DomainLo/DomainHi bound the attribute domain. They are required for
	// any boundary treatment; with BoundaryNone they may both be zero, in
	// which case the sample hull is used for density plotting only.
	DomainLo, DomainHi float64
}

// Estimator is a kernel selectivity estimator over a fixed sample set.
// It is immutable after construction and safe for concurrent use.
type Estimator struct {
	sorted []float64 // sorted samples
	n      int       // number of original samples (the divisor)
	h      float64
	k      kernel.Kernel
	mode   BoundaryMode
	lo, hi float64

	// reflected holds mirrored samples for BoundaryReflect, kept separate
	// from sorted so n stays the divisor and diagnostics can see both.
	reflected []float64

	// moments/reflMoments are the prefix-moment indexes (moments.go) that
	// answer Epanechnikov queries in O(log n) with no per-sample loop.
	// They are nil for other kernels or untrustworthy magnitudes, in which
	// case queries take the O(log n + k) edge-scan path. moments may be
	// shared with a FitContext (and its sibling estimators); reflMoments
	// and strips are bandwidth/domain-dependent and always owned.
	moments     *momentIndex
	reflMoments *momentIndex
	strips      *stripLogs
}

// New builds an estimator from a sample set (copied). The sample set must
// be non-empty and the bandwidth positive. For boundary treatments the
// domain must be a proper interval containing the samples.
//
// Callers fitting many estimators over one sample set (bandwidth-rule
// iterations, grid searches, the hybrid per-bin fits) should sort once
// through NewFitContext and fit with NewFromContext instead.
func New(samples []float64, cfg Config) (*Estimator, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("kde: empty sample set")
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return newSorted(sorted, cfg, nil)
}

// newSorted builds an estimator over an already-sorted sample slice, which
// it aliases (the caller must not mutate it afterwards). shared, when
// non-nil, is a prefix-moment index over exactly that slice, reused
// instead of rebuilt.
func newSorted(sorted []float64, cfg Config, shared *momentIndex) (*Estimator, error) {
	if len(sorted) == 0 {
		return nil, fmt.Errorf("kde: empty sample set")
	}
	if cfg.Bandwidth <= 0 || math.IsNaN(cfg.Bandwidth) || math.IsInf(cfg.Bandwidth, 0) {
		return nil, fmt.Errorf("kde: bandwidth must be positive and finite, got %v", cfg.Bandwidth)
	}
	k := cfg.Kernel
	if k == nil {
		k = kernel.Epanechnikov{}
	}
	if cfg.Boundary == BoundaryKernels && k.Name() != (kernel.Epanechnikov{}).Name() {
		return nil, fmt.Errorf("kde: boundary kernels require the Epanechnikov kernel, got %s", k.Name())
	}
	e := &Estimator{
		sorted: sorted,
		n:      len(sorted),
		h:      cfg.Bandwidth,
		k:      k,
		mode:   cfg.Boundary,
		lo:     cfg.DomainLo,
		hi:     cfg.DomainHi,
	}
	if cfg.Boundary != BoundaryNone {
		if !(cfg.DomainLo < cfg.DomainHi) {
			return nil, fmt.Errorf("kde: boundary treatment needs a proper domain, got [%v, %v]", cfg.DomainLo, cfg.DomainHi)
		}
		if e.sorted[0] < cfg.DomainLo || e.sorted[len(e.sorted)-1] > cfg.DomainHi {
			return nil, fmt.Errorf("kde: samples fall outside the domain [%v, %v]", cfg.DomainLo, cfg.DomainHi)
		}
	}
	if cfg.Boundary == BoundaryReflect {
		e.buildReflection()
	}
	e.buildMoments(shared)
	return e, nil
}

// buildReflection mirrors the samples within kernel reach of each boundary.
// The two mirror sets are counted by binary search first so reflected is
// allocated exactly once at its final size. No sort is needed: left
// mirrors (2·lo − x, all ≤ lo) emitted in reverse sample order are
// ascending, right mirrors (2·hi − x, all ≥ hi) likewise, and every left
// mirror precedes every right mirror.
func (e *Estimator) buildReflection() {
	reach := e.h * e.k.Support()
	// Left mirrors: samples with x − lo < reach, i.e. x < lo + reach.
	nLeft := sort.SearchFloat64s(e.sorted, e.lo+reach)
	// Right mirrors: samples with hi − x < reach, i.e. x > hi − reach.
	firstRight := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > e.hi-reach })
	nRight := len(e.sorted) - firstRight
	if nLeft+nRight == 0 {
		return
	}
	e.reflected = make([]float64, 0, nLeft+nRight)
	for i := nLeft - 1; i >= 0; i-- {
		e.reflected = append(e.reflected, 2*e.lo-e.sorted[i])
	}
	for i := len(e.sorted) - 1; i >= firstRight; i-- {
		e.reflected = append(e.reflected, 2*e.hi-e.sorted[i])
	}
}

// buildMoments precomputes the prefix-moment indexes (moments.go), reusing
// a context-shared index over the sorted samples when one is supplied.
// Only the Epanechnikov kernel has the cubic primitive the closed form
// needs; newMomentIndex additionally refuses magnitudes it cannot sum
// safely.
func (e *Estimator) buildMoments(shared *momentIndex) {
	if _, ok := e.k.(kernel.Epanechnikov); !ok {
		return
	}
	if shared != nil {
		e.moments = shared
	} else {
		e.moments = newMomentIndex(e.sorted)
	}
	if e.moments == nil {
		return
	}
	if len(e.reflected) > 0 {
		e.reflMoments = newMomentIndex(e.reflected)
		if e.reflMoments == nil {
			// Keep the two evaluation paths consistent: all moments or none.
			e.moments = nil
			return
		}
	}
	if e.mode == BoundaryKernels {
		e.strips = newStripLogs(e.sorted, e.lo, e.hi)
	}
}

// Bandwidth returns the smoothing parameter h.
func (e *Estimator) Bandwidth() float64 { return e.h }

// Kernel returns the smoothing kernel.
func (e *Estimator) Kernel() kernel.Kernel { return e.k }

// Mode returns the boundary treatment.
func (e *Estimator) Mode() BoundaryMode { return e.mode }

// SampleSize returns the number of (original) samples.
func (e *Estimator) SampleSize() int { return e.n }

// Name identifies the estimator in experiment output.
func (e *Estimator) Name() string {
	return "kernel(" + e.k.Name() + "," + e.mode.String() + ")"
}

// Selectivity returns the estimated selectivity σ̂(a,b) ∈ [0,1] of the
// range query Q(a,b). Inverted ranges yield 0.
func (e *Estimator) Selectivity(a, b float64) float64 {
	s := e.SelectivityUnclamped(a, b)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// SelectivityUnclamped is Selectivity without the final clamp to [0,1].
// Boundary-kernel estimates are consistent but not a density, so they can
// stray slightly outside [0,1]; callers that renormalise (e.g. the hybrid
// estimator conditioning each bin on its total mass) need the raw value —
// clamping first would silently destroy additivity.
func (e *Estimator) SelectivityUnclamped(a, b float64) float64 {
	return e.selectivityRaw(a, b, e.moments != nil)
}

// SelectivityEdgeScan evaluates the query through the O(log n + k)
// edge-scan path even when the prefix-moment index exists. It is the
// ablation baseline for the moment closed form (benches and the fuzz
// cross-check); production callers should use Selectivity.
func (e *Estimator) SelectivityEdgeScan(a, b float64) float64 {
	s := e.selectivityRaw(a, b, false)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// selectivityRaw dispatches a query to the prefix-moment path (O(log n),
// moments.go) or the edge-scan path (O(log n + k)).
func (e *Estimator) selectivityRaw(a, b float64, useMoments bool) float64 {
	if math.IsNaN(a) || math.IsNaN(b) || b < a {
		return 0
	}
	if telemetry.Enabled() {
		kdeQueries.Inc()
		if useMoments {
			kdeMomentQueries.Inc()
		}
	}
	var s float64
	switch e.mode {
	case BoundaryKernels:
		s = e.selectivityBoundaryKernels(a, b, useMoments)
	case BoundaryReflect:
		// Clip to the domain: mirrored mass outside [lo,hi] belongs to the
		// boundary samples and must not be double-counted by a query that
		// (illegally) extends past the boundary.
		a = math.Max(a, e.lo)
		b = math.Min(b, e.hi)
		if b < a {
			return 0
		}
		if useMoments {
			s = e.momentTotal(b) - e.momentTotal(a)
		} else {
			s = e.sumRangeScan(e.sorted, a, b) + e.sumRangeScan(e.reflected, a, b)
		}
	default:
		if useMoments {
			s = e.moments.cdfSum(b, e.h) - e.moments.cdfSum(a, e.h)
		} else {
			s = e.sumRangeScan(e.sorted, a, b)
		}
	}
	return s / float64(e.n)
}

// momentTotal evaluates F(y) = Σ CDF((y−Xᵢ)/h) over the original and (for
// BoundaryReflect) mirrored samples through the moment indexes. Both the
// single-query and the batch path subtract two momentTotal values, so
// their results are bit-identical.
func (e *Estimator) momentTotal(y float64) float64 {
	s := e.moments.cdfSum(y, e.h)
	if e.reflMoments != nil {
		s += e.reflMoments.cdfSum(y, e.h)
	}
	return s
}

// sumRangeScan returns Σ_i [CDF((b−X_i)/h) − CDF((a−X_i)/h)] over the
// given sorted sample slice, using binary search to count full
// contributions and evaluating primitives only near the query edges. This
// is Algorithm 1 with the O(log n + k) refinement the paper describes; the
// prefix-moment path (moments.go) replaces it for the Epanechnikov kernel
// and remains its fallback for every other kernel.
func (e *Estimator) sumRangeScan(sorted []float64, a, b float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	reach := e.h * e.k.Support()

	// Samples in [a+reach, b−reach] contribute exactly 1.
	full := 0
	fullLo, fullHi := a+reach, b-reach
	var iLo, iHi int
	if fullHi >= fullLo {
		iLo = sort.SearchFloat64s(sorted, fullLo)
		iHi = sort.Search(len(sorted), func(i int) bool { return sorted[i] > fullHi })
		full = iHi - iLo
	} else {
		// Query narrower than the kernel: no full contributions; evaluate
		// everything within reach explicitly.
		iLo = sort.SearchFloat64s(sorted, a-reach)
		iHi = iLo
	}

	// Edge windows: left partial [a−reach, a+reach), right (b−reach, b+reach].
	lw := sort.SearchFloat64s(sorted, a-reach)
	rw := sort.Search(len(sorted), func(i int) bool { return sorted[i] > b+reach })
	sum := float64(full) +
		e.cdfDiffSum(sorted[lw:iLo], a, b) +
		e.cdfDiffSum(sorted[iHi:rw], a, b)
	if telemetry.Enabled() {
		kdeFastPathSamples.Add(int64(full))
		kdeEdgeEvals.Add(int64((iLo - lw) + (rw - iHi)))
	}
	return sum
}

// cdfDiffSum accumulates CDF((b−x)/h) − CDF((a−x)/h) over an edge window.
// The kernel is type-switched to the concrete Epanechnikov once, outside
// the loop, so the common case pays neither interface dispatch per sample
// nor two separate primitive evaluations (kernel.Epanechnikov.CDFDiff
// fuses them).
func (e *Estimator) cdfDiffSum(window []float64, a, b float64) float64 {
	sum := 0.0
	if ep, ok := e.k.(kernel.Epanechnikov); ok {
		for _, x := range window {
			sum += ep.CDFDiff((b-x)/e.h, (a-x)/e.h)
		}
		return sum
	}
	for _, x := range window {
		sum += e.k.CDF((b-x)/e.h) - e.k.CDF((a-x)/e.h)
	}
	return sum
}

// stripGeometry returns the interior bounds of the boundary-kernel strips;
// for domains narrower than 2h the strips meet in the middle instead of
// overlapping.
func (e *Estimator) stripGeometry() (leftEnd, rightStart float64) {
	mid := 0.5 * (e.lo + e.hi)
	return math.Min(e.lo+e.h, mid), math.Max(e.hi-e.h, mid)
}

// selectivityBoundaryKernels integrates the boundary-kernel density over
// [a,b]. The domain is split into the left strip [lo, lo+h], the interior,
// and the right strip [hi−h, hi]; inside the strips the Simonoff–Dong
// family applies with q sweeping 0→1 across the strip. With useMoments the
// strip sums take their closed forms (moments.go) instead of per-sample
// loops, keeping the whole query at O(log n).
func (e *Estimator) selectivityBoundaryKernels(a, b float64, useMoments bool) float64 {
	a = math.Max(a, e.lo)
	b = math.Min(b, e.hi)
	if b < a {
		return 0
	}
	leftEnd, rightStart := e.stripGeometry()

	sum := 0.0
	// Interior contribution via the ordinary kernel.
	if ia, ib := math.Max(a, leftEnd), math.Min(b, rightStart); ib > ia {
		if useMoments {
			sum += e.moments.cdfSum(ib, e.h) - e.moments.cdfSum(ia, e.h)
		} else {
			sum += e.sumRangeScan(e.sorted, ia, ib)
		}
	}
	// Left strip: u = (x−lo)/h ∈ [u1, u2], sample offset s = (X−lo)/h.
	if la, lb := a, math.Min(b, leftEnd); lb > la {
		u1, u2 := (la-e.lo)/e.h, (lb-e.lo)/e.h
		if useMoments {
			sum += e.stripSumMoment(u1, u2, true)
		} else {
			// Only samples within 2h of the boundary can contribute.
			limit := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > e.lo+2*e.h })
			for i := 0; i < limit; i++ {
				sum += kernel.BoundaryStripIntegral((e.sorted[i]-e.lo)/e.h, u1, u2)
			}
			if telemetry.Enabled() {
				kdeEdgeEvals.Add(int64(limit))
			}
		}
	}
	// Right strip: u = (hi−x)/h, s = (hi−X)/h; integration direction flips
	// but the integrand is the same strip integral by symmetry.
	if ra, rb := math.Max(a, rightStart), b; rb > ra {
		u1, u2 := (e.hi-rb)/e.h, (e.hi-ra)/e.h
		if useMoments {
			sum += e.stripSumMoment(u1, u2, false)
		} else {
			start := sort.SearchFloat64s(e.sorted, e.hi-2*e.h)
			for i := start; i < len(e.sorted); i++ {
				sum += kernel.BoundaryStripIntegral((e.hi-e.sorted[i])/e.h, u1, u2)
			}
			if telemetry.Enabled() {
				kdeEdgeEvals.Add(int64(len(e.sorted) - start))
			}
		}
	}
	return sum
}

// Density returns the estimated probability density f̂(x). For boundary
// modes, x outside [DomainLo, DomainHi] evaluates to 0.
func (e *Estimator) Density(x float64) float64 {
	switch e.mode {
	case BoundaryKernels:
		return e.densityBoundaryKernels(x)
	case BoundaryReflect:
		if x < e.lo || x > e.hi {
			return 0
		}
		return (e.sumDensity(e.sorted, x) + e.sumDensity(e.reflected, x)) / (float64(e.n) * e.h)
	default:
		return e.sumDensity(e.sorted, x) / (float64(e.n) * e.h)
	}
}

// sumDensity returns Σ_i K((x−X_i)/h) over samples within kernel reach,
// type-switching to the concrete Epanechnikov once outside the loop.
func (e *Estimator) sumDensity(sorted []float64, x float64) float64 {
	reach := e.h * e.k.Support()
	lo := sort.SearchFloat64s(sorted, x-reach)
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > x+reach })
	sum := 0.0
	if ep, ok := e.k.(kernel.Epanechnikov); ok {
		for i := lo; i < hi; i++ {
			sum += ep.Eval((x - sorted[i]) / e.h)
		}
		return sum
	}
	for i := lo; i < hi; i++ {
		sum += e.k.Eval((x - sorted[i]) / e.h)
	}
	return sum
}

// densityBoundaryKernels evaluates the position-dependent boundary-kernel
// density.
func (e *Estimator) densityBoundaryKernels(x float64) float64 {
	if x < e.lo || x > e.hi {
		return 0
	}
	mid := 0.5 * (e.lo + e.hi)
	leftEnd := math.Min(e.lo+e.h, mid)
	rightStart := math.Max(e.hi-e.h, mid)
	switch {
	case x < leftEnd:
		q := (x - e.lo) / e.h
		limit := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > e.lo+2*e.h })
		sum := 0.0
		for i := 0; i < limit; i++ {
			sum += kernel.BoundaryEval((x-e.sorted[i])/e.h, q)
		}
		return sum / (float64(e.n) * e.h)
	case x > rightStart:
		q := (e.hi - x) / e.h
		start := sort.SearchFloat64s(e.sorted, e.hi-2*e.h)
		sum := 0.0
		for i := start; i < len(e.sorted); i++ {
			sum += kernel.BoundaryEvalRight((x-e.sorted[i])/e.h, q)
		}
		return sum / (float64(e.n) * e.h)
	default:
		return e.sumDensity(e.sorted, x) / (float64(e.n) * e.h)
	}
}

// SelectivityLinear evaluates Algorithm 1 exactly as printed in the paper —
// a Θ(n) loop over all samples with no index acceleration. It exists for
// the ablation bench comparing the evaluation paths and for cross-checking
// the fast paths in tests. BoundaryKernels takes the analogous Θ(n) strip
// loops.
func (e *Estimator) SelectivityLinear(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) || b < a {
		return 0
	}
	if e.mode == BoundaryKernels {
		return e.boundaryKernelsLinear(a, b)
	}
	if e.mode == BoundaryReflect {
		a = math.Max(a, e.lo)
		b = math.Min(b, e.hi)
		if b < a {
			return 0
		}
	}
	sum := 0.0
	for _, x := range e.sorted {
		sum += e.k.CDF((b-x)/e.h) - e.k.CDF((a-x)/e.h)
	}
	for _, x := range e.reflected {
		sum += e.k.CDF((b-x)/e.h) - e.k.CDF((a-x)/e.h)
	}
	s := sum / float64(e.n)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// boundaryKernelsLinear is the Θ(n) reference evaluator for BoundaryKernels
// mode: plain loops over every sample for the interior primitive and both
// strip integrals, with no binary-search windowing and no moment closed
// forms. BoundaryStripIntegral clips itself to zero outside its support, so
// looping over the full sample set is safe.
func (e *Estimator) boundaryKernelsLinear(a, b float64) float64 {
	a = math.Max(a, e.lo)
	b = math.Min(b, e.hi)
	if b < a {
		return 0
	}
	leftEnd, rightStart := e.stripGeometry()
	sum := 0.0
	if ia, ib := math.Max(a, leftEnd), math.Min(b, rightStart); ib > ia {
		for _, x := range e.sorted {
			sum += e.k.CDF((ib-x)/e.h) - e.k.CDF((ia-x)/e.h)
		}
	}
	if la, lb := a, math.Min(b, leftEnd); lb > la {
		u1, u2 := (la-e.lo)/e.h, (lb-e.lo)/e.h
		for _, x := range e.sorted {
			sum += kernel.BoundaryStripIntegral((x-e.lo)/e.h, u1, u2)
		}
	}
	if ra, rb := math.Max(a, rightStart), b; rb > ra {
		u1, u2 := (e.hi-rb)/e.h, (e.hi-ra)/e.h
		for _, x := range e.sorted {
			sum += kernel.BoundaryStripIntegral((e.hi-x)/e.h, u1, u2)
		}
	}
	s := sum / float64(e.n)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}
