package kde

import (
	"math"

	"selest/internal/kernel"
)

// SelectivityCI returns the selectivity estimate together with the
// half-width of an approximate confidence interval at the given z-score
// (1.96 ≈ 95%). The estimator σ̂ = (1/n)Σc_i is a sample mean of the
// per-sample kernel masses c_i ∈ [0,1], so the CLT applies and the
// interval is est ± z·s_c/√n with s_c the sample standard deviation of
// the c_i.
//
// This serves the online-aggregation use case the paper's future work
// names: an approximate answer is only useful together with a precision
// statement. The interval covers sampling error only — the smoothing bias
// of the kernel (the AMISE bias term) is not included, so coverage is
// approximate for bandwidths far from optimal.
func (e *Estimator) SelectivityCI(a, b, z float64) (est, halfWidth float64) {
	if b < a || z < 0 {
		return 0, 0
	}
	qa, qb := a, b
	if e.mode != BoundaryNone {
		qa = math.Max(a, e.lo)
		qb = math.Min(b, e.hi)
		if qb < qa {
			return 0, 0
		}
	}
	// Per-sample masses. The boundary-kernel mode has position-dependent
	// kernels; its per-sample contribution is still a well-defined
	// bounded random variable, evaluated through the same machinery.
	contribs := make([]float64, 0, e.n)
	switch e.mode {
	case BoundaryKernels:
		for _, x := range e.sorted {
			contribs = append(contribs, e.boundaryKernelMass(x, qa, qb))
		}
	default:
		reflTerm := func(x float64) float64 {
			return e.k.CDF((qb-x)/e.h) - e.k.CDF((qa-x)/e.h)
		}
		// Map each original sample to its total contribution including its
		// mirror images, so contributions stay i.i.d. per original sample.
		for _, x := range e.sorted {
			c := reflTerm(x)
			if e.mode == BoundaryReflect {
				reach := e.h * e.k.Support()
				if x-e.lo < reach {
					c += reflTerm(2*e.lo - x)
				}
				if e.hi-x < reach {
					c += reflTerm(2*e.hi - x)
				}
			}
			contribs = append(contribs, c)
		}
	}

	mean := 0.0
	for _, c := range contribs {
		mean += c
	}
	mean /= float64(len(contribs))
	variance := 0.0
	for _, c := range contribs {
		d := c - mean
		variance += d * d
	}
	if len(contribs) > 1 {
		variance /= float64(len(contribs) - 1)
	}
	est = math.Min(math.Max(mean, 0), 1)
	halfWidth = z * math.Sqrt(variance/float64(len(contribs)))
	return est, halfWidth
}

// boundaryKernelMass computes one sample's total contribution to the
// boundary-kernel selectivity over [qa, qb] (interior part plus both
// strips).
func (e *Estimator) boundaryKernelMass(x, qa, qb float64) float64 {
	mid := 0.5 * (e.lo + e.hi)
	leftEnd := math.Min(e.lo+e.h, mid)
	rightStart := math.Max(e.hi-e.h, mid)
	mass := 0.0
	if ia, ib := math.Max(qa, leftEnd), math.Min(qb, rightStart); ib > ia {
		mass += e.k.CDF((ib-x)/e.h) - e.k.CDF((ia-x)/e.h)
	}
	if la, lb := qa, math.Min(qb, leftEnd); lb > la && x <= e.lo+2*e.h {
		u1, u2 := (la-e.lo)/e.h, (lb-e.lo)/e.h
		mass += kernel.BoundaryStripIntegral((x-e.lo)/e.h, u1, u2)
	}
	if ra, rb := math.Max(qa, rightStart), qb; rb > ra && x >= e.hi-2*e.h {
		u1, u2 := (e.hi-rb)/e.h, (e.hi-ra)/e.h
		mass += kernel.BoundaryStripIntegral((e.hi-x)/e.h, u1, u2)
	}
	return mass
}
