package kde

import (
	"math"
	"testing"

	"selest/internal/kernel"
	"selest/internal/xmath"
)

// gridTol is the agreement budget between the DensityGrid sweep and the
// pointwise Density evaluator — the fit-path engine's acceptance bar.
const gridTol = 1e-12

// gridCase enumerates the evaluation windows the sweep must cover: the
// exact domain, a window overhanging both boundaries (out-of-domain
// points must evaluate to 0 exactly as Density does), an interior
// sub-window, and the degenerate single-point grid.
func gridWindows(lo, hi float64) []struct {
	lo, hi float64
	m      int
} {
	span := hi - lo
	return []struct {
		lo, hi float64
		m      int
	}{
		{lo, hi, 257},
		{lo - 0.1*span, hi + 0.1*span, 128},
		{lo + 0.3*span, hi - 0.3*span, 64},
		{lo, hi, 1},
	}
}

func TestDensityGridMatchesPointwise(t *testing.T) {
	for _, c := range momentCorpus(t) {
		for _, mode := range []BoundaryMode{BoundaryNone, BoundaryReflect, BoundaryKernels} {
			for _, hFrac := range []float64{0.004, 0.05, 0.35} {
				h := (c.hi - c.lo) * hFrac
				e, err := New(c.samples, Config{Bandwidth: h, Boundary: mode, DomainLo: c.lo, DomainHi: c.hi})
				if err != nil {
					t.Fatalf("%s mode=%d h=%v: %v", c.name, mode, h, err)
				}
				for _, w := range gridWindows(c.lo, c.hi) {
					got := e.DensityGrid(w.lo, w.hi, w.m)
					want := e.densityGridPointwise(w.lo, w.hi, w.m)
					if len(got) != len(want) {
						t.Fatalf("%s: length %d != %d", c.name, len(got), len(want))
					}
					for i := range got {
						if !xmath.AlmostEqual(got[i], want[i], gridTol) {
							t.Fatalf("%s mode=%d h=%v window=[%v,%v] point %d: sweep %v, pointwise %v",
								c.name, mode, h, w.lo, w.hi, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestDensityGridNonEpanechnikovFallback pins the pointwise fallback for
// kernels without a moment index: the sweep must return exactly what
// Density returns.
func TestDensityGridNonEpanechnikovFallback(t *testing.T) {
	samples := uniformSamples(t, 400, 0, 100, 17)
	e, err := New(samples, Config{Kernel: kernel.Triangular{}, Bandwidth: 5, Boundary: BoundaryReflect, DomainLo: 0, DomainHi: 100})
	if err != nil {
		t.Fatal(err)
	}
	got := e.DensityGrid(0, 100, 129)
	for i, x := range xmath.Linspace(0, 100, 129) {
		if want := e.Density(x); got[i] != want {
			t.Fatalf("fallback point %d: %v != Density %v", i, got[i], want)
		}
	}
}

// TestDensityGridIntegratesToOne sanity-checks the sweep output on a
// proper-density mode: reflection keeps unit mass, so the trapezoid
// integral of the grid must be close to 1.
func TestDensityGridIntegratesToOne(t *testing.T) {
	samples := uniformSamples(t, 2000, 0, 1000, 23)
	e, err := New(samples, Config{Bandwidth: 40, Boundary: BoundaryReflect, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ys := e.DensityGrid(0, 1000, 2001)
	mass := xmath.IntegrateSamples(ys, 0.5)
	if math.Abs(mass-1) > 0.01 {
		t.Fatalf("grid mass %v, want ≈1", mass)
	}
}

// FuzzDensityGrid drives random bandwidths and evaluation windows through
// every boundary mode, holding the sweep to the pointwise evaluator.
func FuzzDensityGrid(f *testing.F) {
	f.Add(uint8(0), 0.05, -0.1, 1.1, 33)
	f.Add(uint8(1), 0.3, 0.0, 1.0, 7)
	f.Add(uint8(2), 0.01, 0.4, 0.6, 100)
	samples := uniformSamples(f, 600, 0, 1000, 5)
	f.Fuzz(func(t *testing.T, mode uint8, hFrac, gLo, gHi float64, m int) {
		if !(hFrac > 1e-4 && hFrac < 10) || math.IsNaN(gLo) || math.IsNaN(gHi) {
			t.Skip()
		}
		if m < 1 || m > 512 || !(gHi >= gLo) || gLo < -10 || gHi > 10 {
			t.Skip()
		}
		e, err := New(samples, Config{
			Bandwidth: 1000 * hFrac,
			Boundary:  BoundaryMode(mode % 3),
			DomainLo:  0, DomainHi: 1000,
		})
		if err != nil {
			t.Skip()
		}
		got := e.DensityGrid(gLo*1000, gHi*1000, m)
		want := e.densityGridPointwise(gLo*1000, gHi*1000, m)
		for i := range got {
			if !xmath.AlmostEqual(got[i], want[i], gridTol) {
				t.Fatalf("mode=%d h=%v window=[%v,%v] m=%d point %d: sweep %v, pointwise %v",
					mode%3, 1000*hFrac, gLo*1000, gHi*1000, m, i, got[i], want[i])
			}
		}
	})
}
