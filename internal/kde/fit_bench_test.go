package kde

// BenchmarkFitDensityGrid vs BenchmarkFitDensityGridPointwise — the grid
// ablation inside the fit-path evidence: one galloping closed-form sweep
// against m independent windowed Density scans over the same 512-point
// pilot grid (the DPI functional / change-point workload).

import (
	"fmt"
	"testing"
)

func densityGridSetup(b *testing.B, n int) *Estimator {
	b.Helper()
	samples := uniformSamples(b, n, 0, 1e6, uint64(n))
	// A DPI-pilot-sized bandwidth: wide windows are exactly where the
	// pointwise scan degrades to O(m·k).
	e, err := New(samples, Config{Bandwidth: 5e4, Boundary: BoundaryReflect, DomainLo: 0, DomainHi: 1e6})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

var gridSizes = []int{2_000, 100_000, 1_000_000}

func BenchmarkFitDensityGrid(b *testing.B) {
	for _, n := range gridSizes {
		e := densityGridSetup(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if ys := e.DensityGrid(0, 1e6, 512); len(ys) != 512 {
					b.Fatal("short grid")
				}
			}
		})
	}
}

func BenchmarkFitDensityGridPointwise(b *testing.B) {
	for _, n := range gridSizes {
		e := densityGridSetup(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if ys := e.densityGridPointwise(0, 1e6, 512); len(ys) != 512 {
					b.Fatal("short grid")
				}
			}
		})
	}
}
