package kde

import "selest/internal/telemetry"

// Query-path telemetry. The paper's O(log n + k) refinement lives or
// dies by how much of a query is answered by binary-search counting
// (samples whose kernel lies entirely inside the range contribute
// exactly 1) versus explicit O(k) primitive evaluations at the query
// edges; these counters expose that ratio in production. Handles are
// captured at init so the hot path is an atomic load (the Enabled gate)
// plus at most three uncontended atomic adds per query — the
// instrumented-vs-bare benchmark pair bounds the total below 5%.
var (
	// kdeQueries counts Selectivity evaluations served by kernel
	// estimators (boundary strips included).
	kdeQueries = telemetry.Default.Counter("selest_kde_queries_total")
	// kdeFastPathSamples counts samples answered by the binary-search
	// fast path — full contributions never evaluated explicitly.
	kdeFastPathSamples = telemetry.Default.Counter("selest_kde_fastpath_samples_total")
	// kdeEdgeEvals counts samples evaluated explicitly: CDF primitives in
	// the edge windows plus boundary-kernel strip integrals.
	kdeEdgeEvals = telemetry.Default.Counter("selest_kde_edge_evals_total")
	// kdeMomentQueries counts queries answered by the prefix-moment closed
	// form (moments.go): O(log n) with zero per-sample evaluations. The gap
	// kdeQueries − kdeMomentQueries is the edge-scan fallback traffic
	// (non-polynomial kernels or untrusted magnitudes).
	kdeMomentQueries = telemetry.Default.Counter("selest_kde_moment_queries_total")
	// kdeBatchCalls counts SelectivityBatch invocations; kdeBatchQueries
	// counts the queries they carried. The ratio is the achieved batching
	// factor — the number of queries amortising each shared edge sweep.
	kdeBatchCalls   = telemetry.Default.Counter("selest_kde_batch_calls_total")
	kdeBatchQueries = telemetry.Default.Counter("selest_kde_batch_queries_total")

	// Fit-path counters. fitSortsAvoided counts estimator (or context)
	// constructions that reused already-sorted data instead of re-sorting —
	// the FitContext's reason to exist; on the seed path every DPI pilot,
	// LSCV fit, oracle candidate, and hybrid bin paid its own O(n log n)
	// sort. fitGridEvals counts density grid points answered by the
	// DensityGrid sweep (the batched replacement for pointwise pilot
	// evaluation in the roughness functionals and the change-point scan).
	fitSortsAvoided = telemetry.Default.Counter("selest_fit_sorts_avoided_total")
	fitGridEvals    = telemetry.Default.Counter("selest_fit_grid_evals_total")
)
