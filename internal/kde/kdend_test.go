package kde

import (
	"math"
	"testing"

	"selest/internal/xmath"
	"selest/internal/xrand"
)

func ndPoints(n, dims int, seed uint64) [][]float64 {
	r := xrand.New(seed)
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dims)
		for j := range p {
			p[j] = r.Float64() * 100
		}
		pts[i] = p
	}
	return pts
}

func TestNewNDValidation(t *testing.T) {
	if _, err := NewND(nil, ConfigND{Bandwidths: []float64{1}}); err == nil {
		t.Fatal("empty points should error")
	}
	if _, err := NewND([][]float64{{1}}, ConfigND{}); err == nil {
		t.Fatal("no bandwidths should error")
	}
	if _, err := NewND([][]float64{{1}}, ConfigND{Bandwidths: []float64{0}}); err == nil {
		t.Fatal("zero bandwidth should error")
	}
	if _, err := NewND([][]float64{{1, 2}}, ConfigND{Bandwidths: []float64{1}}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
	if _, err := NewND([][]float64{{1}}, ConfigND{Bandwidths: []float64{1}, Reflect: true}); err == nil {
		t.Fatal("reflection without domain should error")
	}
	if _, err := NewND([][]float64{{1}}, ConfigND{Bandwidths: []float64{1}, Reflect: true, Lo: []float64{0}, Hi: []float64{0}}); err == nil {
		t.Fatal("empty axis domain should error")
	}
}

func TestNDSingleSample3D(t *testing.T) {
	e, err := NewND([][]float64{{0, 0, 0}}, ConfigND{Bandwidths: []float64{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Dims() != 3 || e.SampleSize() != 1 {
		t.Fatal("accessors wrong")
	}
	if e.Name() != "kernel3d(epanechnikov)" {
		t.Fatalf("Name = %q", e.Name())
	}
	// Whole kernel support: mass 1. One octant through the centre: 1/8.
	whole, err := e.Selectivity([]float64{-1, -1, -1}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !xmath.AlmostEqual(whole, 1, 1e-12) {
		t.Fatalf("whole-support σ̂ = %v", whole)
	}
	octant, err := e.Selectivity([]float64{0, 0, 0}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !xmath.AlmostEqual(octant, 0.125, 1e-12) {
		t.Fatalf("octant σ̂ = %v, want 1/8", octant)
	}
}

func TestNDMatches2DSpecialCase(t *testing.T) {
	// The ND estimator at d=2 must agree exactly with Estimator2D.
	pts := ndPoints(300, 2, 1)
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p[0], p[1]
	}
	nd, err := NewND(pts, ConfigND{
		Bandwidths: []float64{8, 5}, Reflect: true,
		Lo: []float64{0, 0}, Hi: []float64{100, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	twod, err := New2D(xs, ys, Config2D{
		BandwidthX: 8, BandwidthY: 5, Reflect: true,
		LoX: 0, HiX: 100, LoY: 0, HiY: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][4]float64{{0, 30, 0, 30}, {20, 80, 40, 60}, {90, 100, 0, 100}} {
		got, err := nd.Selectivity([]float64{q[0], q[2]}, []float64{q[1], q[3]})
		if err != nil {
			t.Fatal(err)
		}
		want := twod.Selectivity(q[0], q[1], q[2], q[3])
		if !xmath.AlmostEqual(got, want, 1e-12) {
			t.Fatalf("ND %v != 2D %v for %v", got, want, q)
		}
	}
}

func TestNDAccuracyUniform3D(t *testing.T) {
	pts := ndPoints(8000, 3, 2)
	e, err := NewND(pts, ConfigND{
		Bandwidths: []float64{10, 10, 10}, Reflect: true,
		Lo: []float64{0, 0, 0}, Hi: []float64{100, 100, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A 40³ box in a 100³ cube: selectivity 0.064.
	got, err := e.Selectivity([]float64{30, 30, 30}, []float64{70, 70, 70})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.064) > 0.02 {
		t.Fatalf("box σ̂ = %v, want ~0.064", got)
	}
}

func TestNDQueryValidation(t *testing.T) {
	e, err := NewND(ndPoints(10, 2, 3), ConfigND{Bandwidths: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Selectivity([]float64{0}, []float64{1, 2}); err == nil {
		t.Fatal("wrong-arity query should error")
	}
	s, err := e.Selectivity([]float64{5, 5}, []float64{1, 9})
	if err != nil || s != 0 {
		t.Fatalf("inverted axis: (%v, %v)", s, err)
	}
	if _, err := e.Density([]float64{1}); err == nil {
		t.Fatal("wrong-arity density should error")
	}
}

func TestNDDensityIntegratesToSelectivity(t *testing.T) {
	pts := ndPoints(100, 2, 4)
	e, err := NewND(pts, ConfigND{Bandwidths: []float64{10, 10}})
	if err != nil {
		t.Fatal(err)
	}
	// Iterated 1-D Simpson over a window.
	inner := func(x float64) float64 {
		return xmath.Simpson(func(y float64) float64 {
			d, err := e.Density([]float64{x, y})
			if err != nil {
				t.Fatal(err)
			}
			return d
		}, 20, 60, 120)
	}
	want := xmath.Simpson(inner, 30, 70, 120)
	got, err := e.Selectivity([]float64{30, 20}, []float64{70, 60})
	if err != nil {
		t.Fatal(err)
	}
	if !xmath.AlmostEqual(got, want, 1e-3) {
		t.Fatalf("σ̂ %v vs ∫∫f̂ %v", got, want)
	}
}
