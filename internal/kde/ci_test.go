package kde

import (
	"math"
	"testing"

	"selest/internal/xmath"
	"selest/internal/xrand"
)

func TestSelectivityCIMeanMatchesEstimate(t *testing.T) {
	// The CI's point estimate must agree with Selectivity for every mode.
	samples := uniformSamples(t, 1000, 0, 1000, 31)
	for _, mode := range []BoundaryMode{BoundaryNone, BoundaryReflect, BoundaryKernels} {
		e, err := New(samples, Config{Bandwidth: 40, Boundary: mode, DomainLo: 0, DomainHi: 1000})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range [][2]float64{{0, 80}, {100, 300}, {450, 550}, {920, 1000}} {
			est, hw := e.SelectivityCI(q[0], q[1], 1.96)
			want := e.Selectivity(q[0], q[1])
			if !xmath.AlmostEqual(est, want, 1e-9) {
				t.Fatalf("%s: CI estimate %v != Selectivity %v for Q(%v,%v)", mode, est, want, q[0], q[1])
			}
			if hw < 0 {
				t.Fatalf("%s: negative half-width %v", mode, hw)
			}
		}
	}
}

func TestSelectivityCIWidthShrinksWithN(t *testing.T) {
	q := [2]float64{400, 500}
	var prev float64 = math.Inf(1)
	for _, n := range []int{200, 2000, 20000} {
		samples := uniformSamples(t, n, 0, 1000, 32)
		e, err := New(samples, Config{Bandwidth: 30, Boundary: BoundaryReflect, DomainLo: 0, DomainHi: 1000})
		if err != nil {
			t.Fatal(err)
		}
		_, hw := e.SelectivityCI(q[0], q[1], 1.96)
		if hw >= prev {
			t.Fatalf("half-width did not shrink: n=%d gives %v (prev %v)", n, hw, prev)
		}
		prev = hw
	}
}

func TestSelectivityCICoverage(t *testing.T) {
	// Frequentist check: over many independent samples of uniform data,
	// the 95% interval should cover the true selectivity ~95% of the time
	// (smoothing bias is tiny for interior queries on uniform data).
	const (
		trials  = 300
		n       = 500
		a, b    = 300.0, 420.0
		trueSel = (b - a) / 1000
	)
	r := xrand.New(33)
	covered := 0
	for trial := 0; trial < trials; trial++ {
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = r.Float64() * 1000
		}
		e, err := New(samples, Config{Bandwidth: 30, Boundary: BoundaryReflect, DomainLo: 0, DomainHi: 1000})
		if err != nil {
			t.Fatal(err)
		}
		est, hw := e.SelectivityCI(a, b, 1.96)
		if math.Abs(est-trueSel) <= hw {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.88 || rate > 0.99 {
		t.Fatalf("95%% CI covered the truth in %v of trials", rate)
	}
}

func TestSelectivityCIDegenerate(t *testing.T) {
	e, err := New([]float64{1, 2, 3}, Config{Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if est, hw := e.SelectivityCI(5, 4, 1.96); est != 0 || hw != 0 {
		t.Fatal("inverted query should give (0,0)")
	}
	if est, hw := e.SelectivityCI(0, 4, -1); est != 0 || hw != 0 {
		t.Fatal("negative z should give (0,0)")
	}
	// Query far away: estimate 0, zero variance.
	est, hw := e.SelectivityCI(100, 200, 1.96)
	if est != 0 || hw != 0 {
		t.Fatalf("distant query CI = (%v, %v)", est, hw)
	}
}
