package dataset

import "fmt"

// DefaultSeed is the seed of the default catalog; experiments and benches
// use it so that every run regenerates identical files.
const DefaultSeed = 19990601 // SIGMOD '99, Philadelphia

// syntheticRecords is the record count of the artificial files (Table 2).
const syntheticRecords = 100000

// Catalog returns all data files of Table 2, generated deterministically
// from the seed. The full catalog holds ~1.3M records and generates in
// well under a second.
func Catalog(seed uint64) []*File {
	specs := catalogSpecs()
	out := make([]*File, len(specs))
	for i, s := range specs {
		out[i] = s.build(seed)
	}
	return out
}

// ByName generates the single catalog file with the given paper name
// (e.g. "n(20)", "arap1", "rr1(22)", "iw").
func ByName(name string, seed uint64) (*File, error) {
	for _, f := range catalogSpecs() {
		if f.name == name {
			return f.build(seed), nil
		}
	}
	return nil, fmt.Errorf("dataset: unknown data file %q", name)
}

// Names lists the catalog file names in Table 2 order.
func Names() []string {
	specs := catalogSpecs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.name
	}
	return out
}

type spec struct {
	name  string
	build func(seed uint64) *File
}

func catalogSpecs() []spec {
	return []spec{
		{"u(15)", func(s uint64) *File { return UniformFile(15, syntheticRecords, s+1) }},
		{"u(20)", func(s uint64) *File { return UniformFile(20, syntheticRecords, s+2) }},
		{"n(10)", func(s uint64) *File { return NormalFile(10, syntheticRecords, s+3) }},
		{"n(15)", func(s uint64) *File { return NormalFile(15, syntheticRecords, s+4) }},
		{"n(20)", func(s uint64) *File { return NormalFile(20, syntheticRecords, s+5) }},
		{"e(15)", func(s uint64) *File { return ExponentialFile(15, syntheticRecords, s+6) }},
		{"e(20)", func(s uint64) *File { return ExponentialFile(20, syntheticRecords, s+7) }},
		{"arap1", func(s uint64) *File { return ArapFile(1, s+8) }},
		{"arap2", func(s uint64) *File { return ArapFile(2, s+9) }},
		{"rr1(12)", func(s uint64) *File { return RRFile(1, 12, s+10) }},
		{"rr1(22)", func(s uint64) *File { return RRFile(1, 22, s+10) }},
		{"rr2(12)", func(s uint64) *File { return RRFile(2, 12, s+11) }},
		{"rr2(22)", func(s uint64) *File { return RRFile(2, 22, s+11) }},
		{"iw", func(s uint64) *File { return IWFile(s + 12) }},
	}
}
