// Package dataset reproduces the data files of the paper's evaluation
// (Table 2): synthetic files following Uniform, Normal and Exponential
// distributions mapped onto the integer domain [0, 2^p − 1], and synthetic
// stand-ins for the real files (TIGER/Line county coordinates, rail-road &
// river coordinates, census instance weights) that are not available
// offline — see DESIGN.md §4 for the substitution argument.
//
// Every file is deterministic given its seed; the default catalog
// reproduces Table 2's record counts and domain parameters exactly.
package dataset

import (
	"fmt"
	"math"

	"selest/internal/dist"
	"selest/internal/xrand"
)

// File is one data file of the evaluation: a named set of integer-valued
// records over the domain [0, 2^p − 1].
type File struct {
	// Name is the paper's file identifier, e.g. "n(20)" or "arap1".
	Name string
	// Description states the data distribution, matching Table 2.
	Description string
	// P sets the domain [0, 2^P − 1] ("domain cardinality" 2^P).
	P int
	// Records holds the attribute values, each an integer in the domain.
	Records []float64
	// Truth is the analytic distribution the records were drawn from, when
	// one exists (synthetic files); nil for the real-data stand-ins, whose
	// ground truth is the file instance itself.
	Truth dist.Distribution
}

// Domain returns the attribute domain [0, 2^P − 1].
func (f *File) Domain() (lo, hi float64) {
	return 0, math.Pow(2, float64(f.P)) - 1
}

// Len returns the number of records.
func (f *File) Len() int { return len(f.Records) }

// String implements fmt.Stringer with the Table 2 row format.
func (f *File) String() string {
	return fmt.Sprintf("%-8s %-28s p=%-3d #records=%d", f.Name, f.Description, f.P, len(f.Records))
}

// drawMapped fills n records by drawing from d and keeping only draws that
// round into the integer domain [0, 2^p−1], matching the paper's "we did
// not consider data records that were outside of the domain".
func drawMapped(r *xrand.RNG, d dist.Distribution, p, n int) []float64 {
	hi := math.Pow(2, float64(p)) - 1
	out := make([]float64, 0, n)
	for len(out) < n {
		v := math.Round(d.Sample(r))
		if v >= 0 && v <= hi {
			out = append(out, v)
		}
	}
	return out
}

// UniformFile generates u(p): n records uniform over the integer domain.
func UniformFile(p, n int, seed uint64) *File {
	r := xrand.New(seed)
	hi := math.Pow(2, float64(p))
	records := make([]float64, n)
	for i := range records {
		records[i] = math.Floor(r.Float64() * hi)
	}
	return &File{
		Name:        fmt.Sprintf("u(%d)", p),
		Description: "Uniform",
		P:           p,
		Records:     records,
		Truth:       dist.NewUniform(0, hi-1),
	}
}

// NormalFile generates n(p): records from a Normal whose mean sits at the
// centre of the domain (the paper's mapping) with σ = 2^p/8, so ±4σ spans
// the domain and truncation discards almost nothing.
func NormalFile(p, n int, seed uint64) *File {
	r := xrand.New(seed)
	hi := math.Pow(2, float64(p)) - 1
	mu := hi / 2
	sigma := (hi + 1) / 8
	inner := dist.NewNormal(mu, sigma)
	return &File{
		Name:        fmt.Sprintf("n(%d)", p),
		Description: "Normal",
		P:           p,
		Records:     drawMapped(r, inner, p, n),
		Truth:       dist.NewTruncated(inner, 0, hi),
	}
}

// ExponentialFile generates e(p): records from an Exponential with mean at
// one eighth of the domain — highly skewed with the mass at the left
// boundary, the paper's stand-in for Zipf.
func ExponentialFile(p, n int, seed uint64) *File {
	r := xrand.New(seed)
	hi := math.Pow(2, float64(p)) - 1
	rate := 8 / (hi + 1)
	inner := dist.NewExponential(rate)
	return &File{
		Name:        fmt.Sprintf("e(%d)", p),
		Description: "Exponential",
		P:           p,
		Records:     drawMapped(r, inner, p, n),
		Truth:       dist.NewTruncated(inner, 0, hi),
	}
}
