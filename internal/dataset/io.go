package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary file format for data files:
//
//	magic   [4]byte  "SELD"
//	version uint16   1
//	p       uint16
//	nameLen uint16, name []byte
//	descLen uint16, desc []byte
//	count   uint64
//	records [count]float64 (little endian)
//
// The format exists so generated files can be inspected, shipped to other
// tools, and reloaded without regenerating; the paper published its files
// the same way.

var fileMagic = [4]byte{'S', 'E', 'L', 'D'}

const fileVersion = 1

// Save writes the file in the selest binary format.
func (f *File) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return fmt.Errorf("dataset: write magic: %w", err)
	}
	if len(f.Name) > math.MaxUint16 || len(f.Description) > math.MaxUint16 {
		return fmt.Errorf("dataset: name/description too long")
	}
	hdr := []any{
		uint16(fileVersion),
		uint16(f.P),
		uint16(len(f.Name)),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("dataset: write header: %w", err)
		}
	}
	if _, err := bw.WriteString(f.Name); err != nil {
		return fmt.Errorf("dataset: write name: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(f.Description))); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	if _, err := bw.WriteString(f.Description); err != nil {
		return fmt.Errorf("dataset: write description: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(f.Records))); err != nil {
		return fmt.Errorf("dataset: write count: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, f.Records); err != nil {
		return fmt.Errorf("dataset: write records: %w", err)
	}
	return bw.Flush()
}

// Load reads a file in the selest binary format. The Truth field cannot be
// serialised and is nil after loading.
func Load(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("dataset: read magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	var version, p, nameLen uint16
	for _, dst := range []*uint16{&version, &p, &nameLen} {
		if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("dataset: read header: %w", err)
		}
	}
	if version != fileVersion {
		return nil, fmt.Errorf("dataset: unsupported version %d", version)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("dataset: read name: %w", err)
	}
	var descLen uint16
	if err := binary.Read(br, binary.LittleEndian, &descLen); err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	desc := make([]byte, descLen)
	if _, err := io.ReadFull(br, desc); err != nil {
		return nil, fmt.Errorf("dataset: read description: %w", err)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("dataset: read count: %w", err)
	}
	records, err := ReadFloats(br, count)
	if err != nil {
		return nil, fmt.Errorf("dataset: read records: %w", err)
	}
	return &File{
		Name:        string(name),
		Description: string(desc),
		P:           int(p),
		Records:     records,
	}, nil
}

// SaveFile writes the data file to path.
func (f *File) SaveFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer out.Close()
	if err := f.Save(out); err != nil {
		return err
	}
	return out.Close()
}

// LoadFile reads a data file from path.
func LoadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer in.Close()
	return Load(in)
}
