package dataset

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"selest/internal/stats"
)

func TestUniformFile(t *testing.T) {
	f := UniformFile(15, 10000, 1)
	lo, hi := f.Domain()
	if lo != 0 || hi != math.Pow(2, 15)-1 {
		t.Fatalf("domain = [%v, %v]", lo, hi)
	}
	if f.Len() != 10000 {
		t.Fatalf("Len = %d", f.Len())
	}
	for _, v := range f.Records {
		if v < lo || v > hi || v != math.Trunc(v) {
			t.Fatalf("record %v not an integer in the domain", v)
		}
	}
	// Rough uniformity: mean near domain centre.
	m := stats.Mean(f.Records)
	if math.Abs(m-hi/2) > hi*0.02 {
		t.Fatalf("uniform mean = %v, want ~%v", m, hi/2)
	}
	if f.Truth == nil {
		t.Fatal("synthetic file must carry its truth distribution")
	}
}

func TestNormalFileCentredAndTruncated(t *testing.T) {
	f := NormalFile(15, 20000, 2)
	_, hi := f.Domain()
	m := stats.Mean(f.Records)
	if math.Abs(m-hi/2) > hi*0.02 {
		t.Fatalf("normal mean = %v, want domain centre %v", m, hi/2)
	}
	for _, v := range f.Records {
		if v < 0 || v > hi {
			t.Fatalf("record %v outside domain", v)
		}
	}
}

func TestExponentialFileSkew(t *testing.T) {
	f := ExponentialFile(15, 20000, 3)
	_, hi := f.Domain()
	// Skew: median far below the domain centre.
	med := stats.Quantile(f.Records, 0.5)
	if med > hi/4 {
		t.Fatalf("exponential median = %v, want far-left skew (< %v)", med, hi/4)
	}
}

func TestRealStandInsClumpy(t *testing.T) {
	// The spatial stand-ins must be strongly non-uniform: the top decile
	// of 100 equal cells should hold far more than 10% of the records.
	for _, f := range []*File{ArapFile(1, 4), ArapFile(2, 4), RRFile(1, 12, 4)} {
		_, hi := f.Domain()
		cells := make([]int, 100)
		for _, v := range f.Records {
			i := int(v / (hi + 1) * 100)
			if i >= 100 {
				i = 99
			}
			cells[i]++
		}
		sort.Sort(sort.Reverse(sort.IntSlice(cells)))
		top10 := 0
		for _, c := range cells[:10] {
			top10 += c
		}
		frac := float64(top10) / float64(f.Len())
		if frac < 0.3 {
			t.Fatalf("%s: top-decile cells hold only %v of mass; not clumpy", f.Name, frac)
		}
	}
}

func TestIWHeavyDuplicates(t *testing.T) {
	f := IWFile(5)
	if f.Len() != 199523 {
		t.Fatalf("iw record count = %d, want 199523 (Table 2)", f.Len())
	}
	distinct := make(map[float64]bool)
	for _, v := range f.Records {
		distinct[v] = true
	}
	// ~1,500 distinct values over ~200k records: >100 duplicates per value.
	if len(distinct) > 2000 {
		t.Fatalf("iw has %d distinct values; expected heavy duplication", len(distinct))
	}
}

func TestCatalogMatchesTable2(t *testing.T) {
	files := Catalog(DefaultSeed)
	want := map[string]int{
		"u(15)": 100000, "u(20)": 100000,
		"n(10)": 100000, "n(15)": 100000, "n(20)": 100000,
		"e(15)": 100000, "e(20)": 100000,
		"arap1": 52120, "arap2": 52120,
		"rr1(12)": 257942, "rr1(22)": 257942,
		"rr2(12)": 257942, "rr2(22)": 257942,
		"iw": 199523,
	}
	if len(files) != len(want) {
		t.Fatalf("catalog has %d files, want %d", len(files), len(want))
	}
	wantP := map[string]int{
		"u(15)": 15, "u(20)": 20, "n(10)": 10, "n(15)": 15, "n(20)": 20,
		"e(15)": 15, "e(20)": 20, "arap1": 21, "arap2": 18,
		"rr1(12)": 12, "rr1(22)": 22, "rr2(12)": 12, "rr2(22)": 22, "iw": 21,
	}
	for _, f := range files {
		if n, ok := want[f.Name]; !ok || f.Len() != n {
			t.Errorf("%s: %d records, want %d", f.Name, f.Len(), want[f.Name])
		}
		if f.P != wantP[f.Name] {
			t.Errorf("%s: p=%d, want %d", f.Name, f.P, wantP[f.Name])
		}
	}
}

func TestCatalogDeterministic(t *testing.T) {
	a := Catalog(7)
	b := Catalog(7)
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Len() != b[i].Len() {
			t.Fatalf("catalog metadata not deterministic at %d", i)
		}
		for j := range a[i].Records {
			if a[i].Records[j] != b[i].Records[j] {
				t.Fatalf("%s: record %d differs", a[i].Name, j)
			}
		}
	}
}

func TestByName(t *testing.T) {
	f, err := ByName("n(20)", DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "n(20)" || f.P != 20 {
		t.Fatalf("ByName returned %s p=%d", f.Name, f.P)
	}
	if _, err := ByName("bogus", 1); err == nil {
		t.Fatal("unknown name should error")
	}
	// ByName must agree with Catalog for the same seed.
	cat := Catalog(DefaultSeed)
	var fromCat *File
	for _, c := range cat {
		if c.Name == "n(20)" {
			fromCat = c
		}
	}
	for i := range f.Records {
		if f.Records[i] != fromCat.Records[i] {
			t.Fatalf("ByName and Catalog disagree at record %d", i)
		}
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 14 || names[0] != "u(15)" || names[len(names)-1] != "iw" {
		t.Fatalf("Names = %v", names)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	f := UniformFile(10, 1000, 6)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != f.Name || g.Description != f.Description || g.P != f.P || g.Len() != f.Len() {
		t.Fatalf("metadata mismatch: %+v vs %+v", g, f)
	}
	for i := range f.Records {
		if g.Records[i] != f.Records[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a selest file at all"))); err == nil {
		t.Fatal("garbage should fail to load")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should fail to load")
	}
	// Correct magic, bad version.
	var buf bytes.Buffer
	buf.Write(fileMagic[:])
	buf.Write([]byte{99, 0}) // version 99
	buf.Write(make([]byte, 32))
	if _, err := Load(&buf); err == nil {
		t.Fatal("bad version should fail to load")
	}
}

func TestSaveLoadFileOnDisk(t *testing.T) {
	f := NormalFile(10, 500, 7)
	path := t.TempDir() + "/n10.seld"
	if err := f.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 500 {
		t.Fatalf("loaded %d records", g.Len())
	}
	if _, err := LoadFile(t.TempDir() + "/missing.seld"); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestFileString(t *testing.T) {
	f := UniformFile(15, 100, 8)
	s := f.String()
	if s == "" || !bytes.Contains([]byte(s), []byte("u(15)")) {
		t.Fatalf("String = %q", s)
	}
}
