package dataset

import (
	"os"
	"strings"
	"testing"
)

func TestLoadCSVBasic(t *testing.T) {
	in := "id,amount,qty\n1,10.5,2\n2,20,3\n3,30.25,4\n"
	f, err := LoadCSV(strings.NewReader(in), "orders", CSVOptions{Column: "amount", Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	want := []float64{10.5, 20, 30.25}
	for i, v := range want {
		if f.Records[i] != v {
			t.Fatalf("record %d = %v, want %v", i, f.Records[i], v)
		}
	}
	if f.Name != "orders" {
		t.Fatalf("Name = %q", f.Name)
	}
	// Domain must cover the max value: 30.25 < 2^5 − 1 = 31.
	if _, hi := f.Domain(); hi < 30.25 {
		t.Fatalf("domain hi %v does not cover max value", hi)
	}
}

func TestLoadCSVByIndex(t *testing.T) {
	in := "1,100\n2,200\n"
	f, err := LoadCSV(strings.NewReader(in), "t", CSVOptions{Column: "1"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Records[0] != 100 || f.Records[1] != 200 {
		t.Fatalf("records = %v", f.Records)
	}
}

func TestLoadCSVDefaultColumn(t *testing.T) {
	f, err := LoadCSV(strings.NewReader("5\n6\n"), "t", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Records[0] != 5 {
		t.Fatalf("records = %v", f.Records)
	}
}

func TestLoadCSVMissingValues(t *testing.T) {
	in := "v\n1\n\n2\nNULL\n3\n"
	// Strict: fails on the empty field.
	if _, err := LoadCSV(strings.NewReader(in), "t", CSVOptions{Column: "v", Header: true}); err == nil {
		t.Fatal("missing value should fail without AllowMissing")
	}
	f, err := LoadCSV(strings.NewReader(in), "t", CSVOptions{Column: "v", Header: true, AllowMissing: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (missing skipped)", f.Len())
	}
}

func TestLoadCSVErrors(t *testing.T) {
	if _, err := LoadCSV(strings.NewReader("a\nxyz\n"), "t", CSVOptions{Header: true}); err == nil {
		t.Fatal("non-numeric field should fail")
	}
	if _, err := LoadCSV(strings.NewReader("a,b\n1,2\n"), "t", CSVOptions{Column: "nope", Header: true}); err == nil {
		t.Fatal("unknown header column should fail")
	}
	if _, err := LoadCSV(strings.NewReader("1\n"), "t", CSVOptions{Column: "5"}); err == nil {
		t.Fatal("out-of-range column should fail")
	}
	if _, err := LoadCSV(strings.NewReader(""), "t", CSVOptions{}); err == nil {
		t.Fatal("empty input should fail")
	}
	if _, err := LoadCSV(strings.NewReader("v\nInf\n"), "t", CSVOptions{Header: true}); err == nil {
		t.Fatal("non-finite value should fail")
	}
	if _, err := LoadCSV(strings.NewReader("1\n"), "t", CSVOptions{Column: "-1"}); err == nil {
		t.Fatal("negative column should fail")
	}
}

func TestLoadCSVSeparator(t *testing.T) {
	f, err := LoadCSV(strings.NewReader("1;2\n3;4\n"), "t", CSVOptions{Column: "1", Comma: ';'})
	if err != nil {
		t.Fatal(err)
	}
	if f.Records[0] != 2 || f.Records[1] != 4 {
		t.Fatalf("records = %v", f.Records)
	}
}

func TestLoadCSVFileOnDisk(t *testing.T) {
	path := t.TempDir() + "/vals.csv"
	if err := os.WriteFile(path, []byte("v\n7\n8\n9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := LoadCSVFile(path, "v", true)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	if _, err := LoadCSVFile(path+".missing", "v", true); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestDomainP(t *testing.T) {
	cases := []struct {
		max  float64
		want int
	}{
		{1, 1}, // 1 <= 2^1−1
		{3, 2}, // 3 <= 2^2−1
		{4, 3}, // 4 > 3 → p=3 (max 7)
		{1000, 10},
	}
	for _, c := range cases {
		if got := domainP([]float64{0, c.max}); got != c.want {
			t.Errorf("domainP(max=%v) = %d, want %d", c.max, got, c.want)
		}
	}
}
