package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad feeds arbitrary bytes to the binary loader: it must reject or
// accept them without panicking or over-allocating, and anything it
// accepts must round-trip.
func FuzzLoad(f *testing.F) {
	// Seed with a valid file and some near-misses.
	valid := UniformFile(8, 50, 1)
	var buf bytes.Buffer
	if err := valid.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("SELD"))
	f.Add([]byte("SELDxxxxxxxxxxxxxxxxxxx"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		df, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: must re-save and re-load identically.
		var out bytes.Buffer
		if err := df.Save(&out); err != nil {
			t.Fatalf("accepted file failed to save: %v", err)
		}
		again, err := Load(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.Len() != df.Len() || again.Name != df.Name {
			t.Fatal("round trip changed the file")
		}
	})
}

// FuzzLoadCSV feeds arbitrary text to the CSV importer.
func FuzzLoadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n", "a", true)
	f.Add("1\n2\n", "", false)
	f.Add("x;y\n", "0", false)
	f.Fuzz(func(t *testing.T, data, column string, header bool) {
		df, err := LoadCSV(strings.NewReader(data), "fuzz", CSVOptions{
			Column: column, Header: header, AllowMissing: true,
		})
		if err != nil {
			return
		}
		if df.Len() == 0 {
			t.Fatal("accepted CSV with zero records")
		}
		for _, v := range df.Records {
			if v != v { // NaN
				t.Fatal("accepted NaN record")
			}
		}
	})
}
