package dataset

import (
	"fmt"
	"math"

	"selest/internal/xrand"
)

// This file generates the synthetic stand-ins for the paper's real data
// files. The originals (TIGER/Line extracts and a census instance-weight
// column) are unavailable offline; what matters for the paper's
// conclusions is their statistical character, not their exact values:
//
//   - coordinate data from county maps is *clumpy*: settlements, road
//     grids and rivers concentrate endpoints in many narrow clusters with
//     a few dominating — a density full of change points, which is the
//     regime where the hybrid estimator beats the plain kernel estimator
//     (paper Figs. 11, 12);
//   - the census instance-weight column is *heavily duplicated*: a few
//     hundred distinct values cover hundreds of thousands of records.
//
// The generators below reproduce those two characters deterministically.

// clusteredFile draws records from a cluster process on [0, 2^p−1] and
// rounds them to integers, clipping strays to the domain.
func clusteredFile(name string, p, n, clusters int, spreadFrac float64, withRoads bool, seed uint64) *File {
	lo, hi := 0.0, math.Pow(2, float64(p))-1
	proc, err := xrand.NewClusterProcess(xrand.ClusterConfig{
		Clusters:    clusters,
		Lo:          lo,
		Hi:          hi,
		SpreadFrac:  spreadFrac,
		WeightDecay: 1.1,
		Seed:        seed,
	})
	if err != nil {
		// Configurations are compile-time constants below; an error here
		// is a programming bug, not a runtime condition.
		panic(fmt.Sprintf("dataset: cluster process: %v", err))
	}
	r := xrand.New(seed + 1)
	// "Roads": uniform stretches between random endpoints, standing in for
	// the near-linear coordinate runs that road/rail segments produce when
	// one dimension of their endpoints is projected out.
	type road struct{ a, b float64 }
	var roads []road
	if withRoads {
		pr := xrand.New(seed + 2)
		for i := 0; i < 8; i++ {
			a := pr.Float64() * hi
			b := a + pr.Float64()*hi/6
			if b > hi {
				b = hi
			}
			roads = append(roads, road{a, b})
		}
	}
	records := make([]float64, 0, n)
	for len(records) < n {
		var v float64
		if withRoads && r.Float64() < 0.35 {
			rd := roads[r.Intn(len(roads))]
			v = r.UniformRange(rd.a, rd.b)
		} else {
			v = proc.Draw(r)
		}
		v = math.Round(v)
		if v < lo || v > hi {
			continue
		}
		records = append(records, v)
	}
	return &File{
		Name:        name,
		Description: "clustered spatial (synthetic stand-in)",
		P:           p,
		Records:     records,
	}
}

// ArapFile generates the stand-in for the Arapahoe county TIGER/Line
// coordinate files: dim selects the paper's first (p=21) or second (p=18)
// dimension. 52,120 records as in Table 2.
func ArapFile(dim int, seed uint64) *File {
	switch dim {
	case 1:
		f := clusteredFile("arap1", 21, 52120, 140, 0.012, false, seed)
		f.Description = "Arapahoe, 1st dim. (synthetic stand-in)"
		return f
	case 2:
		f := clusteredFile("arap2", 18, 52120, 140, 0.012, false, seed+100)
		f.Description = "Arapahoe, 2nd dim. (synthetic stand-in)"
		return f
	default:
		panic(fmt.Sprintf("dataset: ArapFile dim must be 1 or 2, got %d", dim))
	}
}

// RRFile generates the stand-in for the rail-road & rivers TIGER/Line
// files: dim ∈ {1,2}, p ∈ {12, 22} per Table 2. 257,942 records.
func RRFile(dim, p int, seed uint64) *File {
	if dim != 1 && dim != 2 {
		panic(fmt.Sprintf("dataset: RRFile dim must be 1 or 2, got %d", dim))
	}
	name := fmt.Sprintf("rr%d(%d)", dim, p)
	f := clusteredFile(name, p, 257942, 180, 0.010, true, seed+uint64(dim)*1000+uint64(p))
	f.Description = fmt.Sprintf("Rail road & Rivers, %d. dim. (synthetic stand-in)", dim)
	return f
}

// IWFile generates the stand-in for the census instance-weight column:
// 199,523 records over p=21 with heavy duplication — a log-normal-ish
// spread of a few hundred distinct values with Zipf-like frequencies.
func IWFile(seed uint64) *File {
	const (
		p        = 21
		n        = 199523
		distinct = 1500
	)
	hi := math.Pow(2, float64(p)) - 1
	placement := xrand.New(seed)
	// Distinct weight values: exp of a normal spread, scaled into the
	// domain's lower half (instance weights cluster around a norm).
	values := make([]float64, distinct)
	for i := range values {
		v := math.Exp(placement.NormalMeanStd(0, 0.35)) * hi / 8
		values[i] = math.Round(math.Min(v, hi))
	}
	r := xrand.New(seed + 1)
	z := xrand.NewZipf(r, 1.4, 1, distinct-1)
	records := make([]float64, n)
	for i := range records {
		records[i] = values[z.Uint64()]
	}
	return &File{
		Name:        "iw",
		Description: "Instance Weight (synthetic stand-in)",
		P:           p,
		Records:     records,
	}
}
