package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// CSVOptions controls LoadCSV.
type CSVOptions struct {
	// Column selects which field carries the attribute, by header name
	// (when Header is true) or by 0-based index encoded as a number in a
	// string (e.g. "2"). An empty Column means field 0.
	Column string
	// Header indicates the first row is a header row.
	Header bool
	// Comma is the field separator; zero defaults to ','.
	Comma rune
	// AllowMissing skips rows whose attribute field is empty or "NULL"
	// instead of failing.
	AllowMissing bool
}

// LoadCSV reads one numeric column of a CSV stream into a data file —
// the ingestion path for users bringing their own relations. The domain
// parameter P is derived from the observed maximum (smallest p with
// max < 2^p); name is recorded as the file name.
func LoadCSV(r io.Reader, name string, opts CSVOptions) (*File, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = true

	col := 0
	var header []string
	if opts.Header {
		row, err := cr.Read()
		if err != nil {
			return nil, fmt.Errorf("dataset: csv header: %w", err)
		}
		header = append(header, row...)
	}
	switch {
	case opts.Column == "":
		col = 0
	case opts.Header && !isNumeric(opts.Column):
		col = -1
		for i, h := range header {
			if strings.TrimSpace(h) == opts.Column {
				col = i
				break
			}
		}
		if col == -1 {
			return nil, fmt.Errorf("dataset: csv has no column %q (header: %v)", opts.Column, header)
		}
	default:
		idx, err := strconv.Atoi(opts.Column)
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("dataset: bad column selector %q", opts.Column)
		}
		col = idx
	}

	var records []float64
	line := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("dataset: csv row %d: %w", line, err)
		}
		if col >= len(row) {
			return nil, fmt.Errorf("dataset: csv row %d has %d fields, need column %d", line, len(row), col)
		}
		field := strings.TrimSpace(row[col])
		if field == "" || strings.EqualFold(field, "null") || strings.EqualFold(field, "nan") {
			if opts.AllowMissing {
				continue
			}
			return nil, fmt.Errorf("dataset: csv row %d: missing value (set AllowMissing to skip)", line)
		}
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: csv row %d: %w", line, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("dataset: csv row %d: non-finite value", line)
		}
		records = append(records, v)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: csv holds no records")
	}
	return &File{
		Name:        name,
		Description: "imported CSV column",
		P:           domainP(records),
		Records:     records,
	}, nil
}

// LoadCSVFile reads a CSV file from disk.
func LoadCSVFile(path, column string, header bool) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return LoadCSV(f, strings.TrimSuffix(path, ".csv"), CSVOptions{
		Column: column, Header: header, AllowMissing: true,
	})
}

// domainP returns the smallest p with max(records) < 2^p, so the imported
// file's Domain() covers the data. Negative values yield p such that the
// magnitude fits; Domain() is documented as [0, 2^p−1], so importers of
// signed data should shift first — we pick p from the absolute maximum so
// at least the positive side is always covered.
func domainP(records []float64) int {
	maxAbs := 0.0
	for _, v := range records {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	p := 1
	for math.Pow(2, float64(p))-1 < maxAbs && p < 62 {
		p++
	}
	return p
}

// isNumeric reports whether s parses as a non-negative integer.
func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
