package dataset

import (
	"encoding/binary"
	"fmt"
	"io"
)

// ReadFloats reads count little-endian float64 values in bounded chunks,
// growing the destination incrementally so a corrupt header claiming an
// enormous count fails with an EOF error after the real bytes run out
// instead of attempting one giant allocation up front.
//
// It is shared by the binary loaders of this package and of the catalog
// and query packages.
func ReadFloats(r io.Reader, count uint64) ([]float64, error) {
	const chunk = 1 << 16
	out := make([]float64, 0, min64(count, chunk))
	for uint64(len(out)) < count {
		n := min64(count-uint64(len(out)), chunk)
		buf := make([]float64, n)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("reading %d of %d values: %w", len(out), count, err)
		}
		out = append(out, buf...)
	}
	return out, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
