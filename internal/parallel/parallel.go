// Package parallel provides the bounded worker pool shared by the
// experiment harness and the fit-path engine (parallel bandwidth search,
// hybrid per-bin fits). Callers fan independent cells across at most
// `workers` goroutines; results land in per-index slots on the caller's
// side and errors are reported smallest-index-first, so a parallel run is
// indistinguishable from a sequential one — same results, same error — at
// any worker count. No external concurrency packages: the pool is a
// shared atomic cursor over [0, n).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers resolves a caller-supplied worker count: values <= 0
// mean "one worker per available CPU".
func DefaultWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ForEach calls fn(i) for every i in [0, n) using at most workers
// goroutines. It always runs every index (no early cancellation — cells
// are cheap relative to the cost of tearing down a run), and returns the
// error of the smallest failing index so the caller sees the exact error
// a sequential loop would have surfaced first.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 1 || n == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if workers > n {
		workers = n
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
