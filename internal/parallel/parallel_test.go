package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		var hits [100]atomic.Int64
		if err := ForEach(len(hits), workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachReportsSmallestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		err := ForEach(50, workers, func(i int) error {
			switch i {
			case 7:
				return errA
			case 31:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Fatalf("workers=%d: err = %v, want error of index 7", workers, err)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 8, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(5); got != 5 {
		t.Fatalf("DefaultWorkers(5) = %d", got)
	}
	if got := DefaultWorkers(0); got < 1 {
		t.Fatalf("DefaultWorkers(0) = %d, want >= 1", got)
	}
}
