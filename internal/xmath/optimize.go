package xmath

import (
	"errors"
	"math"
)

// ErrNoBracket is returned by Bisect when the function does not change sign
// over the supplied interval.
var ErrNoBracket = errors.New("xmath: root not bracketed")

const goldenRatio = 0.6180339887498949 // (√5 − 1) / 2

// GoldenSection minimises f over [a,b] and returns the abscissa of the
// minimum. tol is the absolute x-tolerance (defaulted when <= 0). The
// function must be unimodal on the interval for a guaranteed global result;
// otherwise a local minimum is found.
func GoldenSection(f Func, a, b, tol float64) float64 {
	if b < a {
		a, b = b, a
	}
	if tol <= 0 {
		tol = 1e-9 * math.Max(1, math.Abs(a)+math.Abs(b))
	}
	x1 := b - goldenRatio*(b-a)
	x2 := a + goldenRatio*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - goldenRatio*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + goldenRatio*(b-a)
			f2 = f(x2)
		}
	}
	return 0.5 * (a + b)
}

// GridMin evaluates f at n equally spaced points on [a,b] (inclusive) and
// returns the abscissa and value of the smallest evaluation. n is clamped to
// at least 2. Unlike GoldenSection this makes no unimodality assumption and
// is used to scan noisy empirical error curves.
func GridMin(f Func, a, b float64, n int) (x, fx float64) {
	if n < 2 {
		n = 2
	}
	if b < a {
		a, b = b, a
	}
	step := (b - a) / float64(n-1)
	x, fx = a, f(a)
	for i := 1; i < n; i++ {
		xi := a + float64(i)*step
		if fi := f(xi); fi < fx {
			x, fx = xi, fi
		}
	}
	return x, fx
}

// LogGridMin scans f on a logarithmically spaced grid over [a,b] (both must
// be positive) and returns the abscissa and value of the smallest
// evaluation. It is the natural scan for scale parameters such as
// bandwidths, whose plausible range spans orders of magnitude.
func LogGridMin(f Func, a, b float64, n int) (x, fx float64) {
	if a <= 0 || b <= 0 {
		return GridMin(f, a, b, n)
	}
	if n < 2 {
		n = 2
	}
	if b < a {
		a, b = b, a
	}
	la, lb := math.Log(a), math.Log(b)
	step := (lb - la) / float64(n-1)
	x, fx = a, f(a)
	for i := 1; i < n; i++ {
		xi := math.Exp(la + float64(i)*step)
		if fi := f(xi); fi < fx {
			x, fx = xi, fi
		}
	}
	return x, fx
}

// Bisect finds a root of f in [a,b] to within tol using bisection. The
// function values at a and b must differ in sign.
func Bisect(f Func, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, ErrNoBracket
	}
	if tol <= 0 {
		tol = 1e-12 * math.Max(1, math.Abs(a)+math.Abs(b))
	}
	for math.Abs(b-a) > tol {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if (fa > 0) == (fm > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), nil
}
