package xmath

import (
	"errors"
	"math"
)

// ErrBadInterval is returned by quadrature routines when the integration
// interval is empty, inverted, or not finite.
var ErrBadInterval = errors.New("xmath: bad integration interval")

// Func is a real-valued function of one real variable.
type Func func(float64) float64

// Trapezoid approximates ∫_a^b f(x) dx with the composite trapezoid rule
// using n subintervals. n must be at least 1; smaller values are clamped.
func Trapezoid(f Func, a, b float64, n int) float64 {
	if a == b {
		return 0
	}
	if n < 1 {
		n = 1
	}
	h := (b - a) / float64(n)
	sum := 0.5 * (f(a) + f(b))
	for i := 1; i < n; i++ {
		sum += f(a + float64(i)*h)
	}
	return sum * h
}

// Simpson approximates ∫_a^b f(x) dx with the composite Simpson rule using
// n subintervals. n is rounded up to the next even value and clamped to at
// least 2.
func Simpson(f Func, a, b float64, n int) float64 {
	if a == b {
		return 0
	}
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// AdaptiveSimpson approximates ∫_a^b f(x) dx to within tol using recursive
// interval bisection with Richardson error control. maxDepth bounds the
// recursion; depth exhaustion falls back to the current best estimate.
func AdaptiveSimpson(f Func, a, b, tol float64, maxDepth int) (float64, error) {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return 0, ErrBadInterval
	}
	if a == b {
		return 0, nil
	}
	sign := 1.0
	if b < a {
		a, b = b, a
		sign = -1
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxDepth <= 0 {
		maxDepth = 30
	}
	fa, fb := f(a), f(b)
	m := 0.5 * (a + b)
	fm := f(m)
	whole := simpsonStep(a, b, fa, fm, fb)
	return sign * adaptiveSimpsonRec(f, a, b, fa, fm, fb, whole, tol, maxDepth), nil
}

// simpsonStep is Simpson's rule over [a,b] given endpoint and midpoint values.
func simpsonStep(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpsonRec(f Func, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := 0.5 * (a + b)
	lm := 0.5 * (a + m)
	rm := 0.5 * (m + b)
	flm, frm := f(lm), f(rm)
	left := simpsonStep(a, m, fa, flm, fm)
	right := simpsonStep(m, b, fm, frm, fb)
	if depth <= 0 {
		return left + right
	}
	delta := left + right - whole
	if math.Abs(delta) <= 15*tol {
		return left + right + delta/15
	}
	return adaptiveSimpsonRec(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveSimpsonRec(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// IntegrateSamples approximates the integral of a function tabulated at
// equally spaced points xs[0], xs[0]+dx, ... with the trapezoid rule.
func IntegrateSamples(ys []float64, dx float64) float64 {
	if len(ys) < 2 {
		return 0
	}
	sum := 0.5 * (ys[0] + ys[len(ys)-1])
	for _, y := range ys[1 : len(ys)-1] {
		sum += y
	}
	return sum * dx
}
