package xmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGoldenSectionParabola(t *testing.T) {
	x := GoldenSection(func(x float64) float64 { return (x - 1.7) * (x - 1.7) }, -10, 10, 1e-10)
	if !AlmostEqual(x, 1.7, 1e-6) {
		t.Fatalf("GoldenSection minimum at %v, want 1.7", x)
	}
}

func TestGoldenSectionReversedBounds(t *testing.T) {
	x := GoldenSection(func(x float64) float64 { return x * x }, 5, -5, 1e-10)
	if !AlmostEqual(x, 0, 1e-6) {
		t.Fatalf("GoldenSection with reversed bounds at %v, want 0", x)
	}
}

func TestGridMin(t *testing.T) {
	x, fx := GridMin(func(x float64) float64 { return math.Abs(x - 3) }, 0, 10, 101)
	if !AlmostEqual(x, 3, 1e-9) || !AlmostEqual(fx, 0, 1e-9) {
		t.Fatalf("GridMin = (%v, %v), want (3, 0)", x, fx)
	}
}

func TestGridMinClampsN(t *testing.T) {
	x, _ := GridMin(func(x float64) float64 { return x }, 0, 1, 0)
	if x != 0 {
		t.Fatalf("GridMin with n=0 picked %v, want endpoint 0", x)
	}
}

func TestLogGridMin(t *testing.T) {
	// Minimum of AMISE-like curve c1/x + c2*x^2 is at (c1/(2 c2))^(1/3).
	f := func(h float64) float64 { return 1/h + h*h }
	want := math.Pow(0.5, 1.0/3.0)
	x, _ := LogGridMin(f, 1e-3, 1e3, 4001)
	if !AlmostEqual(x, want, 1e-2) {
		t.Fatalf("LogGridMin = %v, want %v", x, want)
	}
}

func TestLogGridMinNonPositiveFallsBack(t *testing.T) {
	x, _ := LogGridMin(func(x float64) float64 { return (x + 1) * (x + 1) }, -2, 2, 401)
	if !AlmostEqual(x, -1, 1e-2) {
		t.Fatalf("LogGridMin fallback = %v, want -1", x)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(root, math.Sqrt2, 1e-9) {
		t.Fatalf("Bisect = %v, want sqrt(2)", root)
	}
}

func TestBisectExactEndpoints(t *testing.T) {
	f := func(x float64) float64 { return x }
	if root, err := Bisect(f, 0, 1, 1e-12); err != nil || root != 0 {
		t.Fatalf("Bisect root-at-a = (%v, %v)", root, err)
	}
	if root, err := Bisect(f, -1, 0, 1e-12); err != nil || root != 0 {
		t.Fatalf("Bisect root-at-b = (%v, %v)", root, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9); err != ErrNoBracket {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

func TestDerivative(t *testing.T) {
	got := Derivative(math.Sin, 0.7, 0)
	if !AlmostEqual(got, math.Cos(0.7), 1e-7) {
		t.Fatalf("Derivative(sin, 0.7) = %v, want %v", got, math.Cos(0.7))
	}
}

func TestSecondDerivative(t *testing.T) {
	got := SecondDerivative(math.Exp, 1, 0)
	if !AlmostEqual(got, math.E, 1e-4) {
		t.Fatalf("SecondDerivative(exp, 1) = %v, want e", got)
	}
}

func TestGradientTable(t *testing.T) {
	// y = x^2 on grid 0..4: derivative should be 2x in the interior.
	ys := []float64{0, 1, 4, 9, 16}
	g := GradientTable(ys, 1)
	for i, want := range []float64{1, 2, 4, 6, 7} {
		if !AlmostEqual(g[i], want, 1e-12) {
			t.Fatalf("GradientTable[%d] = %v, want %v", i, g[i], want)
		}
	}
}

func TestGradientTableDegenerate(t *testing.T) {
	if g := GradientTable([]float64{1}, 1); len(g) != 1 || g[0] != 0 {
		t.Fatalf("GradientTable(single) = %v", g)
	}
}

func TestSecondDerivativeTable(t *testing.T) {
	// y = x^2 has constant second derivative 2.
	ys := []float64{0, 1, 4, 9, 16}
	s := SecondDerivativeTable(ys, 1)
	for i, v := range s {
		if !AlmostEqual(v, 2, 1e-12) {
			t.Fatalf("SecondDerivativeTable[%d] = %v, want 2", i, v)
		}
	}
}

// Property: the golden-section minimiser of a random convex parabola lands
// on its vertex when the vertex is inside the search interval.
func TestQuickGoldenSectionVertex(t *testing.T) {
	prop := func(seed uint8) bool {
		v := float64(seed)/16 - 8 // vertex in [-8, 8)
		x := GoldenSection(func(x float64) float64 { return (x - v) * (x - v) }, -10, 10, 1e-10)
		return AlmostEqual(x, v, 1e-5)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
