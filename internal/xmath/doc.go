// Package xmath provides the numerical substrate used throughout selest:
// quadrature, numerical differentiation, scalar minimisation and root
// finding, and small floating-point helpers.
//
// The estimators in this repository need to integrate density functionals
// such as ∫ f'(x)² dx, differentiate estimated densities to locate change
// points, and minimise one-dimensional error curves (e.g. AMISE as a
// function of the smoothing parameter). All of those primitives live here
// so the statistical packages stay free of ad-hoc numerics.
//
// Everything operates on float64 and plain func(float64) float64 values;
// there are no dependencies outside the standard library.
package xmath
