package xmath

import "math"

// Derivative approximates f'(x) with a central difference of step h.
// If h <= 0 a step proportional to max(|x|,1)·cbrt(eps) is chosen.
func Derivative(f Func, x, h float64) float64 {
	if h <= 0 {
		h = stepFor(x, 1.0/3.0)
	}
	return (f(x+h) - f(x-h)) / (2 * h)
}

// SecondDerivative approximates f”(x) with a central second difference of
// step h. If h <= 0 a step proportional to max(|x|,1)·eps^(1/4) is chosen.
func SecondDerivative(f Func, x, h float64) float64 {
	if h <= 0 {
		h = stepFor(x, 1.0/4.0)
	}
	return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
}

// stepFor picks a finite-difference step that balances truncation and
// round-off error: max(|x|,1) · eps^pow.
func stepFor(x, pow float64) float64 {
	scale := math.Abs(x)
	if scale < 1 {
		scale = 1
	}
	return scale * math.Pow(2.220446049250313e-16, pow)
}

// GradientTable returns the central-difference first derivative of a
// tabulated function ys sampled on an equally spaced grid with spacing dx.
// One-sided differences are used at the ends. The result has len(ys)
// entries; inputs shorter than 2 yield a zero slice of the same length.
func GradientTable(ys []float64, dx float64) []float64 {
	out := make([]float64, len(ys))
	if len(ys) < 2 || dx == 0 {
		return out
	}
	n := len(ys)
	out[0] = (ys[1] - ys[0]) / dx
	out[n-1] = (ys[n-1] - ys[n-2]) / dx
	for i := 1; i < n-1; i++ {
		out[i] = (ys[i+1] - ys[i-1]) / (2 * dx)
	}
	return out
}

// SecondDerivativeTable returns the central second difference of a tabulated
// function on an equally spaced grid. The endpoints copy their neighbours so
// the slice is fully populated.
func SecondDerivativeTable(ys []float64, dx float64) []float64 {
	out := make([]float64, len(ys))
	if len(ys) < 3 || dx == 0 {
		return out
	}
	n := len(ys)
	for i := 1; i < n-1; i++ {
		out[i] = (ys[i+1] - 2*ys[i] + ys[i-1]) / (dx * dx)
	}
	out[0] = out[1]
	out[n-1] = out[n-2]
	return out
}
