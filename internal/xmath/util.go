package xmath

import "math"

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Linspace returns n equally spaced values from a to b inclusive.
// n < 2 yields []float64{a}.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		return []float64{a}
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}

// AlmostEqual reports whether a and b agree to within tol absolutely or
// relatively (whichever is looser). NaNs are never equal.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// Lerp linearly interpolates between a and b by t ∈ [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// InterpTable linearly interpolates a function tabulated at equally spaced
// abscissas x0, x0+dx, ... at the point x. Values outside the table are
// clamped to the nearest endpoint.
func InterpTable(ys []float64, x0, dx, x float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	if len(ys) == 1 || dx == 0 {
		return ys[0]
	}
	t := (x - x0) / dx
	if t <= 0 {
		return ys[0]
	}
	if t >= float64(len(ys)-1) {
		return ys[len(ys)-1]
	}
	i := int(t)
	return Lerp(ys[i], ys[i+1], t-float64(i))
}

// Cube returns x³; it exists because the paper's bin-width formulas use
// cubes and cube roots heavily and x*x*x at call sites obscures intent.
func Cube(x float64) float64 { return x * x * x }

// Sq returns x².
func Sq(x float64) float64 { return x * x }
