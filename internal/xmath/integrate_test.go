package xmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTrapezoidLinear(t *testing.T) {
	// The trapezoid rule is exact for affine integrands.
	got := Trapezoid(func(x float64) float64 { return 3*x + 1 }, 0, 2, 7)
	if !AlmostEqual(got, 8, 1e-12) {
		t.Fatalf("Trapezoid(3x+1, 0, 2) = %v, want 8", got)
	}
}

func TestTrapezoidEmptyInterval(t *testing.T) {
	if got := Trapezoid(math.Sin, 1, 1, 10); got != 0 {
		t.Fatalf("Trapezoid over empty interval = %v, want 0", got)
	}
}

func TestTrapezoidClampsN(t *testing.T) {
	got := Trapezoid(func(x float64) float64 { return x }, 0, 1, 0)
	if !AlmostEqual(got, 0.5, 1e-12) {
		t.Fatalf("Trapezoid with n=0 = %v, want 0.5", got)
	}
}

func TestSimpsonCubicExact(t *testing.T) {
	// Simpson's rule is exact for cubics.
	got := Simpson(func(x float64) float64 { return x * x * x }, 0, 2, 4)
	if !AlmostEqual(got, 4, 1e-12) {
		t.Fatalf("Simpson(x^3, 0, 2) = %v, want 4", got)
	}
}

func TestSimpsonOddNRoundedUp(t *testing.T) {
	got := Simpson(func(x float64) float64 { return x * x }, 0, 3, 5)
	if !AlmostEqual(got, 9, 1e-10) {
		t.Fatalf("Simpson(x^2, 0, 3) with odd n = %v, want 9", got)
	}
}

func TestSimpsonSine(t *testing.T) {
	got := Simpson(math.Sin, 0, math.Pi, 200)
	if !AlmostEqual(got, 2, 1e-8) {
		t.Fatalf("Simpson(sin, 0, pi) = %v, want 2", got)
	}
}

func TestAdaptiveSimpson(t *testing.T) {
	got, err := AdaptiveSimpson(math.Exp, 0, 1, 1e-12, 40)
	if err != nil {
		t.Fatal(err)
	}
	want := math.E - 1
	if !AlmostEqual(got, want, 1e-10) {
		t.Fatalf("AdaptiveSimpson(exp, 0, 1) = %v, want %v", got, want)
	}
}

func TestAdaptiveSimpsonReversedInterval(t *testing.T) {
	fwd, err := AdaptiveSimpson(math.Cos, 0, 1, 1e-10, 30)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := AdaptiveSimpson(math.Cos, 1, 0, 1e-10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(fwd, -rev, 1e-10) {
		t.Fatalf("reversed interval: fwd=%v rev=%v", fwd, rev)
	}
}

func TestAdaptiveSimpsonBadInterval(t *testing.T) {
	if _, err := AdaptiveSimpson(math.Sin, math.NaN(), 1, 1e-8, 10); err != ErrBadInterval {
		t.Fatalf("NaN bound: err = %v, want ErrBadInterval", err)
	}
	if _, err := AdaptiveSimpson(math.Sin, 0, math.Inf(1), 1e-8, 10); err != ErrBadInterval {
		t.Fatalf("infinite bound: err = %v, want ErrBadInterval", err)
	}
}

func TestAdaptiveSimpsonDefaults(t *testing.T) {
	got, err := AdaptiveSimpson(func(x float64) float64 { return x * x }, 0, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(got, 9, 1e-8) {
		t.Fatalf("AdaptiveSimpson with default tol/depth = %v, want 9", got)
	}
}

func TestIntegrateSamples(t *testing.T) {
	ys := []float64{0, 1, 2, 3, 4} // y = x on [0,4], dx = 1
	if got := IntegrateSamples(ys, 1); !AlmostEqual(got, 8, 1e-12) {
		t.Fatalf("IntegrateSamples = %v, want 8", got)
	}
}

func TestIntegrateSamplesDegenerate(t *testing.T) {
	if got := IntegrateSamples(nil, 1); got != 0 {
		t.Fatalf("IntegrateSamples(nil) = %v, want 0", got)
	}
	if got := IntegrateSamples([]float64{5}, 1); got != 0 {
		t.Fatalf("IntegrateSamples(single) = %v, want 0", got)
	}
}

// Property: splitting an integral at an interior point is additive.
func TestQuickSimpsonAdditive(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(x) + 0.3*x }
	prop := func(seed uint32) bool {
		a := float64(seed%100) / 10
		m := a + 0.5
		b := a + 1.5
		whole := Simpson(f, a, b, 400)
		parts := Simpson(f, a, m, 400) + Simpson(f, m, b, 400)
		return AlmostEqual(whole, parts, 1e-8)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
