package xmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v, %v, %v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(xs) != len(want) {
		t.Fatalf("Linspace length = %d, want %d", len(xs), len(want))
	}
	for i := range want {
		if !AlmostEqual(xs[i], want[i], 1e-12) {
			t.Fatalf("Linspace[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
}

func TestLinspaceEndpointExact(t *testing.T) {
	xs := Linspace(0, 0.3, 7)
	if xs[len(xs)-1] != 0.3 {
		t.Fatalf("last element = %v, want exactly 0.3", xs[len(xs)-1])
	}
}

func TestLinspaceDegenerate(t *testing.T) {
	if xs := Linspace(2, 9, 1); len(xs) != 1 || xs[0] != 2 {
		t.Fatalf("Linspace(n=1) = %v", xs)
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1+1e-13, 1e-9) {
		t.Error("near-identical values should compare equal")
	}
	if AlmostEqual(1, 2, 1e-9) {
		t.Error("distant values should not compare equal")
	}
	if AlmostEqual(math.NaN(), math.NaN(), 1) {
		t.Error("NaN must never compare equal")
	}
	if !AlmostEqual(1e18, 1e18+1, 1e-9) {
		t.Error("relative tolerance should kick in for large magnitudes")
	}
}

func TestInterpTable(t *testing.T) {
	ys := []float64{0, 10, 20}
	if got := InterpTable(ys, 0, 1, 0.5); !AlmostEqual(got, 5, 1e-12) {
		t.Fatalf("InterpTable(0.5) = %v, want 5", got)
	}
	if got := InterpTable(ys, 0, 1, -3); got != 0 {
		t.Fatalf("InterpTable below range = %v, want 0", got)
	}
	if got := InterpTable(ys, 0, 1, 99); got != 20 {
		t.Fatalf("InterpTable above range = %v, want 20", got)
	}
	if got := InterpTable(nil, 0, 1, 1); got != 0 {
		t.Fatalf("InterpTable(nil) = %v, want 0", got)
	}
	if got := InterpTable([]float64{7}, 0, 1, 123); got != 7 {
		t.Fatalf("InterpTable(single) = %v, want 7", got)
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(2, 4, 0.5); got != 3 {
		t.Fatalf("Lerp = %v, want 3", got)
	}
}

func TestCubeSq(t *testing.T) {
	if Cube(3) != 27 || Sq(-4) != 16 {
		t.Fatal("Cube/Sq wrong")
	}
}

// Property: Clamp output is always within bounds and idempotent.
func TestQuickClamp(t *testing.T) {
	prop := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		c := Clamp(v, -1, 1)
		return c >= -1 && c <= 1 && Clamp(c, -1, 1) == c
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Linspace is monotone for a < b.
func TestQuickLinspaceMonotone(t *testing.T) {
	prop := func(seed uint8) bool {
		a := float64(seed) - 128
		b := a + 1 + float64(seed%13)
		xs := Linspace(a, b, 50)
		for i := 1; i < len(xs); i++ {
			if xs[i] <= xs[i-1] {
				return false
			}
		}
		return xs[0] == a && xs[len(xs)-1] == b
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
