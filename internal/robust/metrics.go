package robust

import "selest/internal/telemetry"

// Ladder telemetry. Every Report the builder returns also feeds these
// series, so a fleet of robust estimators is observable without
// collecting Report values by hand: how often builds degrade, which
// rungs actually serve, how much input sanitization scrubs, and whether
// query-time panic containment is firing in production.
var (
	robustBuilds         = telemetry.Default.Counter("selest_robust_builds_total")
	robustDegraded       = telemetry.Default.Counter("selest_robust_degraded_total")
	robustAttemptsFailed = telemetry.Default.Counter("selest_robust_attempts_failed_total")
	robustPanicAttempts  = telemetry.Default.Counter("selest_robust_attempt_panics_total")
	robustDropped        = telemetry.Default.Counter("selest_robust_samples_dropped_total")
	robustClamped        = telemetry.Default.Counter("selest_robust_samples_clamped_total")
	robustQueryPanics    = telemetry.Default.Counter("selest_robust_query_panics_total")
)

// recordReport feeds one successful build's report into the registry.
// The rung counter is labeled and therefore resolved per build — builds
// are cold, so the registry lookup is irrelevant next to the fit.
func recordReport(rep *Report) {
	robustBuilds.Inc()
	if rep.Degraded {
		robustDegraded.Inc()
	}
	for _, a := range rep.Attempts {
		robustAttemptsFailed.Inc()
		if a.Panicked {
			robustPanicAttempts.Inc()
		}
	}
	robustDropped.Add(int64(rep.Sanitize.Dropped))
	robustClamped.Add(int64(rep.Sanitize.Clamped))
	telemetry.Default.Counter(telemetry.Label("selest_robust_rung_total", "rung", string(rep.Rung))).Inc()
}
