// Package robust wraps core.Build in a graceful-degradation ladder so a
// serving system never trades an answer for an error. The paper's
// comparison assumes clean samples and converging smoothing rules; a
// production estimator sees NaNs from corrupted pages, constant columns,
// and bandwidth rules that diverge on pathological data. Build therefore
//
//  1. sanitizes the sample set — non-finite values are scrubbed,
//     out-of-domain values are clamped to the domain, and a constant
//     (or single-element) sample yields a point-mass estimator instead
//     of an error;
//  2. walks an ordered ladder of estimation methods — by default
//     Kernel(boundary kernels) → EquiDepth → Sampling → Uniform —
//     stepping down whenever a rung fails to fit, and recording every
//     failed attempt in a Report;
//  3. contains panics: a panic inside a fit becomes a failed rung, and a
//     panic inside a served Selectivity call becomes a per-query uniform
//     fallback instead of a crashed caller;
//  4. guards every estimate — inverted queries are swapped, NaN bounds
//     answer 0, and the result is clamped to a finite value in [0, 1].
//
// The ladder is exercised rung by rung in tests through the
// internal/faultinject registry, which can force a failure in any fit
// stage (bandwidth rule, core dispatch, hybrid change-point detection).
package robust

import (
	"fmt"
	"math"
	"sync/atomic"

	"selest/internal/core"
	"selest/internal/kde"
)

// DefaultLadder returns the degradation ladder appended below the
// requested method: each rung is structurally simpler and harder to break
// than the one above it. Uniform cannot fail on a sanitized sample set
// with a proper domain.
func DefaultLadder() []core.Method {
	return []core.Method{core.Kernel, core.EquiDepth, core.Sampling, core.Uniform}
}

// SanitizeReport describes what input scrubbing did to the sample set.
type SanitizeReport struct {
	// Total is the original sample count, Kept the count after scrubbing.
	Total, Kept int
	// Dropped counts NaN/±Inf values removed.
	Dropped int
	// Clamped counts finite values moved onto the domain boundary.
	Clamped int
	// Constant reports that the surviving samples were all equal, so a
	// point-mass estimator was returned without touching the ladder.
	Constant bool
}

// Attempt records one failed rung of the ladder.
type Attempt struct {
	// Method is the rung that failed.
	Method core.Method
	// Err is the failure rendered as text (panics appear as
	// "panic: ..."), naming the stage that failed.
	Err string
	// Panicked reports that the failure was a recovered panic rather
	// than a returned error.
	Panicked bool
}

// Report describes how Build arrived at the estimator it returned.
type Report struct {
	// Requested is the method the caller asked for (after defaulting).
	Requested core.Method
	// Rung is the method that actually serves; "point-mass" when the
	// sanitizer short-circuited on a constant sample.
	Rung core.Method
	// Degraded reports that Rung differs from Requested.
	Degraded bool
	// Attempts lists the failed rungs in ladder order.
	Attempts []Attempt
	// Sanitize describes the input scrubbing.
	Sanitize SanitizeReport
	// DomainLo/DomainHi are the effective domain bounds after
	// auto-derivation from the sample hull when the caller's domain was
	// empty.
	DomainLo, DomainHi float64
}

// String renders the report for log lines and CLI warnings.
func (r *Report) String() string {
	s := fmt.Sprintf("rung=%s", r.Rung)
	if r.Degraded {
		s += fmt.Sprintf(" (requested %s)", r.Requested)
	}
	if r.Sanitize.Dropped > 0 || r.Sanitize.Clamped > 0 {
		s += fmt.Sprintf(" sanitized=%d dropped, %d clamped of %d",
			r.Sanitize.Dropped, r.Sanitize.Clamped, r.Sanitize.Total)
	}
	for _, a := range r.Attempts {
		s += fmt.Sprintf("; %s failed: %s", a.Method, a.Err)
	}
	return s
}

// PointMassMethod is the Report.Rung value for the sanitizer's
// constant-sample short circuit.
const PointMassMethod core.Method = "point-mass"

// Estimator is the panic-safe serving wrapper Build returns. Selectivity
// never panics, never returns NaN, and always answers in [0, 1]; a panic
// in the wrapped estimator degrades that query to the uniform assumption
// over the domain.
type Estimator struct {
	inner  core.Estimator
	lo, hi float64
	report *Report

	queryPanics atomic.Int64
}

var _ core.Estimator = (*Estimator)(nil)

// Selectivity answers the range query with every output guard applied:
// NaN bounds yield 0, inverted bounds are swapped, and the wrapped
// estimate is clamped to a finite value in [0, 1].
func (e *Estimator) Selectivity(a, b float64) (s float64) {
	if math.IsNaN(a) || math.IsNaN(b) {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	defer func() {
		if r := recover(); r != nil {
			e.queryPanics.Add(1)
			robustQueryPanics.Inc()
			s = e.uniformFallback(a, b)
		}
	}()
	s = e.inner.Selectivity(a, b)
	switch {
	case math.IsNaN(s) || s < 0:
		return 0
	case s > 1:
		return 1
	}
	return s
}

// uniformFallback is the per-query degradation target when the wrapped
// estimator panics: the uniform assumption over the effective domain.
func (e *Estimator) uniformFallback(a, b float64) float64 {
	if !(e.hi > e.lo) {
		return 0
	}
	overlap := math.Min(b, e.hi) - math.Max(a, e.lo)
	if !(overlap > 0) {
		return 0
	}
	if f := overlap / (e.hi - e.lo); f < 1 {
		return f
	}
	return 1
}

// Name identifies the estimator in experiment output.
func (e *Estimator) Name() string { return "robust(" + e.inner.Name() + ")" }

// Report returns the build report: the rung serving, failed attempts, and
// the sanitizer's account of the input.
func (e *Estimator) Report() *Report { return e.report }

// QueryPanics returns how many Selectivity calls were recovered from a
// panic in the wrapped estimator and answered with the uniform fallback.
func (e *Estimator) QueryPanics() int64 { return e.queryPanics.Load() }

// Unwrap returns the estimator serving behind the guard, for diagnostics.
func (e *Estimator) Unwrap() core.Estimator { return e.inner }

// pointMass is the estimator for a constant sample: all mass sits at one
// value, so a query's selectivity is 1 when it covers the value and 0
// otherwise.
type pointMass struct{ v float64 }

func (p pointMass) Selectivity(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	if a <= p.v && p.v <= b {
		return 1
	}
	return 0
}

func (p pointMass) Name() string { return "point-mass" }

// Build constructs an estimator that cannot fail on any sample set
// containing at least one finite value. opts.Method (default Kernel) is
// the top rung; the DefaultLadder rungs follow. The returned Report is
// never nil. The only error is a sample set with no finite values and no
// usable domain — there is nothing to estimate from.
func Build(samples []float64, opts core.Options) (*Estimator, *Report, error) {
	method := opts.Method
	if method == "" {
		method = core.Kernel
	}
	report := &Report{Requested: method}

	// An explicitly inverted or NaN domain is a caller bug the ladder must
	// not paper over — sanitization fixes dirty data, not wrong programs.
	// (An unset or merely degenerate domain still derives from the sample
	// hull below.)
	if math.IsNaN(opts.DomainLo) || math.IsNaN(opts.DomainHi) {
		return nil, report, fmt.Errorf("robust: domain [%v, %v] has NaN bounds: %w", opts.DomainLo, opts.DomainHi, core.ErrInvalidDomain)
	}
	if opts.DomainLo > opts.DomainHi {
		return nil, report, fmt.Errorf("robust: domain [%v, %v] is inverted: %w", opts.DomainLo, opts.DomainHi, core.ErrInvalidDomain)
	}

	clean, lo, hi, err := sanitize(samples, opts.DomainLo, opts.DomainHi, &report.Sanitize)
	if err != nil {
		return nil, report, err
	}
	report.DomainLo, report.DomainHi = lo, hi

	if report.Sanitize.Constant {
		report.Rung = PointMassMethod
		report.Degraded = method != PointMassMethod
		recordReport(report)
		return &Estimator{inner: pointMass{v: clean[0]}, lo: lo, hi: hi, report: report}, report, nil
	}

	opts.DomainLo, opts.DomainHi = lo, hi
	for _, rung := range ladder(method) {
		o := opts
		o.Method = rung
		if rung == core.Kernel && o.Boundary == kde.BoundaryNone && o.Kernel == nil {
			// The ladder's kernel rung is the paper's best configuration;
			// boundary kernels require the (default) Epanechnikov kernel.
			o.Boundary = kde.BoundaryKernels
		}
		if !kernelFamily(rung) && core.KernelOnlyRule(o.Rule) {
			// LSCV and the closed-form rules select kernel bandwidths only;
			// histogram rungs need a bin-width rule, so stepping down swaps
			// in the normal scale rule instead of failing on a kernel-only
			// configuration.
			o.Rule = core.NormalScale
		}
		est, err := safeBuild(clean, o)
		if err != nil {
			report.Attempts = append(report.Attempts, Attempt{
				Method:   rung,
				Err:      err.Error(),
				Panicked: isRecovered(err),
			})
			continue
		}
		report.Rung = rung
		report.Degraded = rung != method
		recordReport(report)
		return &Estimator{inner: est, lo: lo, hi: hi, report: report}, report, nil
	}
	return nil, report, fmt.Errorf("robust: every rung failed: %s", report.String())
}

// kernelFamily reports whether a rung fits a kernel-class estimator —
// one that resolves its smoothing parameter through a kernel bandwidth,
// so the kernel-only rules stay meaningful on it.
func kernelFamily(m core.Method) bool {
	switch m {
	case core.Kernel, core.BetaKernel, core.VariableKernel:
		return true
	}
	return false
}

// ladder returns the rungs to attempt: the requested method first, then
// the default ladder with duplicates removed.
func ladder(method core.Method) []core.Method {
	rungs := []core.Method{method}
	for _, m := range DefaultLadder() {
		if m != method {
			rungs = append(rungs, m)
		}
	}
	return rungs
}

// recoveredError marks an error that was converted from a panic, so the
// Report can distinguish containment from ordinary failure.
type recoveredError struct{ err error }

func (r recoveredError) Error() string { return r.err.Error() }
func (r recoveredError) Unwrap() error { return r.err }

func isRecovered(err error) bool {
	_, ok := err.(recoveredError)
	return ok
}

// safeBuild runs core.Build with panic containment: a panic in any fit
// stage becomes an error and therefore a failed rung, not a crashed
// caller.
func safeBuild(samples []float64, opts core.Options) (est core.Estimator, err error) {
	defer func() {
		if r := recover(); r != nil {
			est = nil
			err = recoveredError{fmt.Errorf("panic: %v", r)}
		}
	}()
	est, err = core.Build(samples, opts)
	if err == nil && est == nil {
		err = fmt.Errorf("robust: builder returned no estimator")
	}
	return est, err
}

// sanitize scrubs the sample set and resolves the effective domain:
// non-finite values are dropped; with a proper caller domain, finite
// out-of-domain values are clamped onto the nearest boundary; without
// one, the domain is derived from the surviving sample hull. A constant
// result sets rep.Constant (the point-mass short circuit).
func sanitize(samples []float64, lo, hi float64, rep *SanitizeReport) ([]float64, float64, float64, error) {
	rep.Total = len(samples)
	haveDomain := hi > lo && !math.IsInf(lo, 0) && !math.IsInf(hi, 0) && !math.IsNaN(lo) && !math.IsNaN(hi)

	clean := make([]float64, 0, len(samples))
	for _, v := range samples {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			rep.Dropped++
			continue
		}
		if haveDomain {
			if v < lo {
				v = lo
				rep.Clamped++
			} else if v > hi {
				v = hi
				rep.Clamped++
			}
		}
		clean = append(clean, v)
	}
	rep.Kept = len(clean)
	if len(clean) == 0 {
		return nil, 0, 0, fmt.Errorf("robust: no finite samples (of %d offered): %w", rep.Total, core.ErrEmptySample)
	}

	min, max := clean[0], clean[0]
	for _, v := range clean[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if !haveDomain {
		lo, hi = min, max
	}
	if min == max {
		rep.Constant = true
		return clean[:1], lo, hi, nil
	}
	return clean, lo, hi, nil
}
