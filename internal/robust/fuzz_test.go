package robust

import (
	"encoding/binary"
	"math"
	"testing"

	"selest/internal/core"
)

// decodeSamples turns fuzz bytes into a float64 sample set, 8 bytes per
// value, so the fuzzer can reach NaN/Inf bit patterns directly.
func decodeSamples(data []byte) []float64 {
	out := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
		data = data[8:]
	}
	return out
}

func encodeSamples(vals ...float64) []byte {
	out := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

// FuzzBuild feeds adversarial sample sets and query bounds through the
// robust ladder and asserts the invariant the package exists for: every
// returned estimate is finite and in [0, 1], for every estimator the
// ladder can produce.
func FuzzBuild(f *testing.F) {
	// Seed corpus: the adversarial shapes named in the robustness issue —
	// NaN/Inf mixtures, constants, a single element, monotone duplicates.
	f.Add(encodeSamples(math.NaN(), math.Inf(1), math.Inf(-1), 1), 0.0, 1.0)
	f.Add(encodeSamples(5, 5, 5, 5, 5), 4.0, 6.0)
	f.Add(encodeSamples(7), 7.0, 7.0)
	f.Add(encodeSamples(1, 1, 2, 2, 3, 3, 4, 4), 2.0, 3.0)
	f.Add(encodeSamples(0, 1e308, -1e308), math.Inf(-1), math.Inf(1))
	f.Add(encodeSamples(), 0.0, 0.0)
	f.Add(encodeSamples(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 10.0, 1.0)

	f.Fuzz(func(t *testing.T, data []byte, a, b float64) {
		samples := decodeSamples(data)
		for _, method := range []core.Method{"", core.Hybrid, core.EquiDepth, core.MaxDiff} {
			est, rep, err := Build(samples, core.Options{Method: method})
			if err != nil {
				// Only a sample set with no finite values may fail.
				for _, v := range samples {
					if !math.IsNaN(v) && !math.IsInf(v, 0) {
						t.Fatalf("method %q: Build failed on finite data %v: %v (report %s)", method, samples, err, rep)
					}
				}
				continue
			}
			for _, q := range [][2]float64{{a, b}, {b, a}, {math.NaN(), b}, {a, math.NaN()}, {math.Inf(-1), math.Inf(1)}} {
				s := est.Selectivity(q[0], q[1])
				if math.IsNaN(s) || s < 0 || s > 1 {
					t.Fatalf("method %q rung %s: Selectivity(%v, %v) = %v, want finite in [0,1]",
						method, rep.Rung, q[0], q[1], s)
				}
			}
		}
	})
}
