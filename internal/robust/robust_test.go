package robust

import (
	"errors"
	"math"
	"strings"
	"testing"

	"selest/internal/core"
	"selest/internal/faultinject"
	"selest/internal/xrand"
)

// testSamples returns a smooth, well-behaved sample set in [0, 1000].
func testSamples(n int) []float64 {
	rng := xrand.New(7)
	out := make([]float64, n)
	for i := range out {
		out[i] = 1000 * rng.Float64()
	}
	return out
}

func opts() core.Options {
	return core.Options{DomainLo: 0, DomainHi: 1000}
}

func assertServes(t *testing.T, e *Estimator) {
	t.Helper()
	for _, q := range [][2]float64{{100, 300}, {-50, 2000}, {300, 100}, {math.NaN(), 500}, {0, math.NaN()}} {
		s := e.Selectivity(q[0], q[1])
		if math.IsNaN(s) || s < 0 || s > 1 {
			t.Fatalf("Selectivity(%v, %v) = %v, want finite in [0,1]", q[0], q[1], s)
		}
	}
}

func TestBuildCleanServesRequestedRung(t *testing.T) {
	e, rep, err := Build(testSamples(500), opts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != core.Kernel || rep.Degraded {
		t.Fatalf("report = %s, want kernel rung undegraded", rep)
	}
	if len(rep.Attempts) != 0 {
		t.Fatalf("clean build recorded attempts: %s", rep)
	}
	assertServes(t, e)
	// The kernel rung should be reasonably accurate on uniform data.
	if s := e.Selectivity(0, 500); math.Abs(s-0.5) > 0.1 {
		t.Fatalf("Selectivity(0, 500) = %v, want ≈0.5", s)
	}
}

// TestLadderRungByRung forces a failure at each rung in turn and asserts
// the build lands exactly one rung lower, with the Report naming the
// failed stage.
func TestLadderRungByRung(t *testing.T) {
	steps := []struct {
		site string
		want core.Method
	}{
		{"core.build.kernel", core.EquiDepth},
		{"core.build.equi-depth", core.Sampling},
		{"core.build.sampling", core.Uniform},
	}
	injected := errors.New("injected fit failure")
	for i, step := range steps {
		t.Run(string(step.want), func(t *testing.T) {
			t.Cleanup(faultinject.Reset)
			for _, s := range steps[:i+1] {
				faultinject.Enable(s.site, injected)
			}
			e, rep, err := Build(testSamples(500), opts())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Rung != step.want {
				t.Fatalf("rung = %s, want %s (report: %s)", rep.Rung, step.want, rep)
			}
			if !rep.Degraded {
				t.Fatal("report should mark the build degraded")
			}
			if len(rep.Attempts) != i+1 {
				t.Fatalf("attempts = %d, want %d", len(rep.Attempts), i+1)
			}
			for j, a := range rep.Attempts {
				if !strings.Contains(a.Err, "injected fit failure") {
					t.Fatalf("attempt %d error %q does not name the injected failure", j, a.Err)
				}
			}
			assertServes(t, e)
		})
	}
}

// TestLadderBandwidthRuleFailure injects the failure below core — in the
// bandwidth rule itself — and asserts the kernel rung steps down.
func TestLadderBandwidthRuleFailure(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Enable("bandwidth.normal-scale", errors.New("rule diverged"))
	e, rep, err := Build(testSamples(500), opts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != core.EquiDepth {
		t.Fatalf("rung = %s, want equi-depth (report: %s)", rep.Rung, rep)
	}
	if len(rep.Attempts) != 1 || !strings.Contains(rep.Attempts[0].Err, "rule diverged") {
		t.Fatalf("report does not name the bandwidth failure: %s", rep)
	}
	assertServes(t, e)
}

// TestLadderLSCVFailure exercises the lscv fault site through a kernel
// build configured with the LSCV rule.
func TestLadderLSCVFailure(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Enable("bandwidth.lscv", errors.New("lscv diverged"))
	o := opts()
	o.Rule = core.LSCV
	_, rep, err := Build(testSamples(200), o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != core.EquiDepth {
		t.Fatalf("rung = %s, want equi-depth (report: %s)", rep.Rung, rep)
	}
}

// TestLadderHybridFailure asks for the hybrid method and fails its
// change-point detection; the ladder must fall through to the kernel rung.
func TestLadderHybridFailure(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Enable("hybrid.changepoints", errors.New("empty bins"))
	_, rep, err := Build(testSamples(500), core.Options{Method: core.Hybrid, DomainLo: 0, DomainHi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != core.Kernel {
		t.Fatalf("rung = %s, want kernel (report: %s)", rep.Rung, rep)
	}
	if len(rep.Attempts) != 1 || !strings.Contains(rep.Attempts[0].Err, "change-point") {
		t.Fatalf("report does not name the hybrid stage: %s", rep)
	}
}

// TestFitPanicContained turns a rung's failure into a panic and asserts
// it is recovered into a failed attempt, not a crash.
func TestFitPanicContained(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.EnablePanic("core.build.kernel", "index out of range [4097]")
	e, rep, err := Build(testSamples(500), opts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != core.EquiDepth {
		t.Fatalf("rung = %s, want equi-depth", rep.Rung)
	}
	if len(rep.Attempts) != 1 || !rep.Attempts[0].Panicked {
		t.Fatalf("panic not recorded as a recovered attempt: %s", rep)
	}
	assertServes(t, e)
}

// TestAllRungsFail exhausts the ladder and checks the terminal error
// names every rung.
func TestAllRungsFail(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	for _, m := range DefaultLadder() {
		faultinject.Enable("core.build."+string(m), errors.New("total outage"))
	}
	_, rep, err := Build(testSamples(100), opts())
	if err == nil {
		t.Fatal("exhausted ladder should error")
	}
	if len(rep.Attempts) != len(DefaultLadder()) {
		t.Fatalf("attempts = %d, want %d", len(rep.Attempts), len(DefaultLadder()))
	}
}

func TestSanitizeScrubsAndClamps(t *testing.T) {
	samples := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -50, 1200, 100, 200, 300, 400, 500}
	e, rep, err := Build(samples, opts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sanitize.Dropped != 3 || rep.Sanitize.Clamped != 2 || rep.Sanitize.Kept != 7 {
		t.Fatalf("sanitize = %+v", rep.Sanitize)
	}
	assertServes(t, e)
}

func TestConstantSampleYieldsPointMass(t *testing.T) {
	for _, samples := range [][]float64{
		{42, 42, 42, 42},
		{7},
		{math.NaN(), 9, 9, math.Inf(1)},
	} {
		e, rep, err := Build(samples, core.Options{})
		if err != nil {
			t.Fatalf("Build(%v): %v", samples, err)
		}
		if rep.Rung != PointMassMethod || !rep.Sanitize.Constant {
			t.Fatalf("Build(%v) report = %s, want point-mass", samples, rep)
		}
		var v float64 // the finite constant of the sample set
		for _, x := range samples {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				v = x
				break
			}
		}
		if s := e.Selectivity(v-1, v+1); s != 1 {
			t.Fatalf("point mass covering query = %v, want 1", s)
		}
		if s := e.Selectivity(v+1, v+2); s != 0 {
			t.Fatalf("point mass disjoint query = %v, want 0", s)
		}
		if s := e.Selectivity(v+1, v-1); s != 1 {
			t.Fatalf("point mass inverted covering query = %v, want 1 after swap", s)
		}
	}
}

func TestNoFiniteSamplesErrors(t *testing.T) {
	if _, _, err := Build([]float64{math.NaN(), math.Inf(1)}, core.Options{}); err == nil {
		t.Fatal("all-non-finite sample set should error")
	}
	if _, _, err := Build(nil, core.Options{}); err == nil {
		t.Fatal("empty sample set should error")
	}
}

func TestDomainAutoDerived(t *testing.T) {
	samples := testSamples(300)
	e, rep, err := Build(samples, core.Options{}) // no domain given
	if err != nil {
		t.Fatal(err)
	}
	if !(rep.DomainHi > rep.DomainLo) {
		t.Fatalf("derived domain [%v, %v] is empty", rep.DomainLo, rep.DomainHi)
	}
	assertServes(t, e)
}

// panicky is an estimator whose Selectivity always panics, standing in
// for a latent bug in a served fit.
type panicky struct{}

func (panicky) Selectivity(a, b float64) float64 { panic("latent bug") }
func (panicky) Name() string                     { return "panicky" }

func TestQueryPanicDegradesToUniform(t *testing.T) {
	e := &Estimator{inner: panicky{}, lo: 0, hi: 100, report: &Report{}}
	if s := e.Selectivity(0, 50); s != 0.5 {
		t.Fatalf("panicking fit should fall back to uniform 0.5, got %v", s)
	}
	if s := e.Selectivity(-10, 200); s != 1 {
		t.Fatalf("covering query fallback = %v, want 1", s)
	}
	if s := e.Selectivity(150, 200); s != 0 {
		t.Fatalf("disjoint query fallback = %v, want 0", s)
	}
	if n := e.QueryPanics(); n != 3 {
		t.Fatalf("QueryPanics = %d, want 3", n)
	}
}

func TestGuardNormalizesQueries(t *testing.T) {
	e, _, err := Build(testSamples(500), opts())
	if err != nil {
		t.Fatal(err)
	}
	fwd := e.Selectivity(100, 400)
	if rev := e.Selectivity(400, 100); rev != fwd {
		t.Fatalf("inverted query = %v, want swapped answer %v", rev, fwd)
	}
	if s := e.Selectivity(math.NaN(), math.NaN()); s != 0 {
		t.Fatalf("NaN query = %v, want 0", s)
	}
	if s := e.Selectivity(math.Inf(-1), math.Inf(1)); math.IsNaN(s) || s < 0 || s > 1 {
		t.Fatalf("infinite query = %v, want finite in [0,1]", s)
	}
}

func TestReportString(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Enable("core.build.kernel", errors.New("boom"))
	_, rep, err := Build(testSamples(100), opts())
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"rung=equi-depth", "requested kernel", "kernel failed", "boom"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
}

// TestBetaKernelServesAndDegrades pins the beta-kernel rung into the
// ladder: clean builds serve it undegraded under its closed-form rule,
// and a failure at the closed-form fault site steps down to the kernel
// rung with the histogram rungs below swapping the kernel-only rule for
// normal scale — identical degradation to the LSCV path.
func TestBetaKernelServesAndDegrades(t *testing.T) {
	o := opts()
	o.Method = core.BetaKernel
	o.Rule = core.BetaClosedForm
	e, rep, err := Build(testSamples(500), o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != core.BetaKernel || rep.Degraded {
		t.Fatalf("report = %s, want beta-kernel rung undegraded", rep)
	}
	assertServes(t, e)
	if s := e.Selectivity(0, 500); math.Abs(s-0.5) > 0.1 {
		t.Fatalf("Selectivity(0, 500) = %v, want ≈0.5", s)
	}

	t.Cleanup(faultinject.Reset)
	faultinject.Enable("core.build.beta-kernel", errors.New("beta fit down"))
	e, rep, err = Build(testSamples(500), o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != core.Kernel {
		t.Fatalf("rung = %s, want kernel (report: %s)", rep.Rung, rep)
	}
	assertServes(t, e)

	// Kill the whole kernel family: the closed-form rule must not strand
	// the histogram rungs.
	faultinject.Enable("core.build.kernel", errors.New("kernel down"))
	e, rep, err = Build(testSamples(500), o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != core.EquiDepth {
		t.Fatalf("rung = %s, want equi-depth (report: %s)", rep.Rung, rep)
	}
	assertServes(t, e)
}

// TestLadderClosedFormRuleFailure exercises the closed-form fault site
// through a beta-kernel build, mirroring TestLadderLSCVFailure.
func TestLadderClosedFormRuleFailure(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Enable("bandwidth.beta-closed-form", errors.New("moments diverged"))
	o := opts()
	o.Method = core.BetaKernel
	o.Rule = core.BetaClosedForm
	_, rep, err := Build(testSamples(200), o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rung != core.EquiDepth {
		t.Fatalf("rung = %s, want equi-depth (report: %s)", rep.Rung, rep)
	}
	if len(rep.Attempts) == 0 || !strings.Contains(rep.Attempts[0].Err, "moments diverged") {
		t.Fatalf("report does not name the closed-form failure: %s", rep)
	}
}
