// Package dist provides analytic probability distributions — PDF, CDF,
// quantile, sampling, and the density functionals ∫f'² and ∫f”² that the
// paper's asymptotically optimal smoothing parameters depend on.
//
// These distributions serve two roles in the reproduction:
//
//  1. They generate the synthetic data files of the evaluation (Uniform,
//     Normal, Exponential mapped to an integer domain), and
//  2. they are the ground truth against which MISE and the oracle smoothing
//     parameters ("h-opt") are computed, which the paper's figures 9 and 11
//     use as the unachievable-in-practice reference columns.
//
// All distributions are immutable values; sampling takes an explicit
// *xrand.RNG so that data generation stays deterministic.
package dist
