package dist

import (
	"math"

	"selest/internal/xrand"
)

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

// NewUniform returns a Uniform on [lo, hi]. It panics if hi <= lo, since a
// degenerate support makes every downstream formula meaningless.
func NewUniform(lo, hi float64) Uniform {
	if hi <= lo || math.IsNaN(lo) || math.IsNaN(hi) {
		panic("dist: uniform support must satisfy lo < hi")
	}
	return Uniform{Lo: lo, Hi: hi}
}

// PDF returns the density at x.
func (u Uniform) PDF(x float64) float64 {
	if x < u.Lo || x > u.Hi {
		return 0
	}
	return 1 / (u.Hi - u.Lo)
}

// CDF returns P(X <= x).
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x < u.Lo:
		return 0
	case x > u.Hi:
		return 1
	default:
		return (x - u.Lo) / (u.Hi - u.Lo)
	}
}

// Quantile returns the p-quantile.
func (u Uniform) Quantile(p float64) float64 {
	p = clamp01(p)
	return u.Lo + p*(u.Hi-u.Lo)
}

// Support returns [Lo, Hi].
func (u Uniform) Support() (float64, float64) { return u.Lo, u.Hi }

// Sample draws one variate.
func (u Uniform) Sample(r *xrand.RNG) float64 {
	return r.UniformRange(u.Lo, u.Hi)
}

// Mean returns the expectation.
func (u Uniform) Mean() float64 { return 0.5 * (u.Lo + u.Hi) }

// Std returns the standard deviation.
func (u Uniform) Std() float64 { return (u.Hi - u.Lo) / math.Sqrt(12) }

// roughnessFirst: f' = 0 inside the support, so ∫f'² = 0. (The boundary
// jumps are not differentiable; the asymptotic theory treats them as zero,
// which is why the uniform estimator wins on uniform data in Fig. 8.)
func (u Uniform) roughnessFirst() float64 { return 0 }

// roughnessSecond: f” = 0 inside the support.
func (u Uniform) roughnessSecond() float64 { return 0 }

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
