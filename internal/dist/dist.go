package dist

import (
	"math"

	"selest/internal/xmath"
	"selest/internal/xrand"
)

// Distribution is a one-dimensional continuous probability distribution.
type Distribution interface {
	// PDF returns the probability density at x.
	PDF(x float64) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the smallest x with CDF(x) >= p, for p in [0,1].
	Quantile(p float64) float64
	// Support returns the interval outside which the density is zero.
	// Unbounded sides are reported as ±Inf.
	Support() (lo, hi float64)
	// Sample draws one variate using r.
	Sample(r *xrand.RNG) float64
}

// Selectivity returns the distribution selectivity σ(a,b) = F(b) − F(a) of
// the range query Q(a,b) (paper eq. 1). Inverted ranges yield 0.
func Selectivity(d Distribution, a, b float64) float64 {
	if b < a {
		return 0
	}
	return d.CDF(b) - d.CDF(a)
}

// effectiveSupport clips an infinite support to a finite interval carrying
// all but eps of the probability mass, for numeric integration.
func effectiveSupport(d Distribution, eps float64) (float64, float64) {
	lo, hi := d.Support()
	if math.IsInf(lo, -1) {
		lo = d.Quantile(eps)
	}
	if math.IsInf(hi, 1) {
		hi = d.Quantile(1 - eps)
	}
	return lo, hi
}

// RoughnessFirst returns ∫ f'(x)² dx, the density functional in the
// asymptotically optimal equi-width bin width (paper eq. 7). Closed forms
// are used where the distribution provides them; otherwise the integral is
// evaluated numerically over the effective support.
func RoughnessFirst(d Distribution) float64 {
	if r, ok := d.(interface{ roughnessFirst() float64 }); ok {
		return r.roughnessFirst()
	}
	lo, hi := effectiveSupport(d, 1e-9)
	// Shrink slightly inside the support so finite differences do not
	// straddle a density jump at the boundary.
	span := hi - lo
	h := span * 1e-6
	f := func(x float64) float64 {
		df := (d.PDF(x+h) - d.PDF(x-h)) / (2 * h)
		return df * df
	}
	return xmath.Simpson(f, lo+2*h, hi-2*h, 4096)
}

// RoughnessSecond returns ∫ f”(x)² dx, the density functional in the
// asymptotically optimal kernel bandwidth (paper §4.2).
func RoughnessSecond(d Distribution) float64 {
	if r, ok := d.(interface{ roughnessSecond() float64 }); ok {
		return r.roughnessSecond()
	}
	lo, hi := effectiveSupport(d, 1e-9)
	span := hi - lo
	h := span * 1e-5
	f := func(x float64) float64 {
		d2 := (d.PDF(x+h) - 2*d.PDF(x) + d.PDF(x-h)) / (h * h)
		return d2 * d2
	}
	return xmath.Simpson(f, lo+2*h, hi-2*h, 4096)
}
