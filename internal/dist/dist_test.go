package dist

import (
	"math"
	"testing"
	"testing/quick"

	"selest/internal/xmath"
	"selest/internal/xrand"
)

// checkDistribution exercises the invariants every Distribution must obey.
func checkDistribution(t *testing.T, d Distribution, name string) {
	t.Helper()
	lo, hi := effectiveSupport(d, 1e-10)

	// CDF is monotone non-decreasing and maps support to ~[0,1].
	prev := -1.0
	for _, x := range xmath.Linspace(lo, hi, 200) {
		c := d.CDF(x)
		if c < prev-1e-12 {
			t.Fatalf("%s: CDF not monotone at x=%v: %v < %v", name, x, c, prev)
		}
		if c < -1e-12 || c > 1+1e-12 {
			t.Fatalf("%s: CDF out of [0,1] at x=%v: %v", name, x, c)
		}
		prev = c
	}

	// PDF integrates to ~1 over the effective support.
	mass := xmath.Simpson(d.PDF, lo, hi, 4000)
	if math.Abs(mass-1) > 1e-3 {
		t.Fatalf("%s: PDF integrates to %v, want ~1", name, mass)
	}

	// Quantile inverts the CDF.
	for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		x := d.Quantile(p)
		if got := d.CDF(x); math.Abs(got-p) > 1e-6 {
			t.Fatalf("%s: CDF(Quantile(%v)) = %v", name, p, got)
		}
	}

	// Sampling matches the CDF at a few probe points (KS-style check).
	r := xrand.New(1234)
	const n = 50000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = d.Sample(r)
	}
	for _, p := range []float64{0.25, 0.5, 0.75} {
		x := d.Quantile(p)
		below := 0
		for _, s := range samples {
			if s <= x {
				below++
			}
		}
		frac := float64(below) / n
		if math.Abs(frac-p) > 0.02 {
			t.Fatalf("%s: empirical CDF at q%v = %v, want ~%v", name, p, frac, p)
		}
	}
}

func TestUniformContract(t *testing.T) {
	checkDistribution(t, NewUniform(-2, 5), "uniform")
}

func TestNormalContract(t *testing.T) {
	checkDistribution(t, NewNormal(3, 2), "normal")
}

func TestExponentialContract(t *testing.T) {
	checkDistribution(t, NewExponential(1.5), "exponential")
}

func TestTruncatedContract(t *testing.T) {
	checkDistribution(t, NewTruncated(NewNormal(0, 1), -2, 2), "truncated normal")
}

func TestMixtureContract(t *testing.T) {
	m := NewMixture(
		[]Distribution{NewNormal(-3, 0.5), NewNormal(4, 1)},
		[]float64{1, 2},
	)
	checkDistribution(t, m, "mixture")
}

func TestSelectivity(t *testing.T) {
	u := NewUniform(0, 10)
	if got := Selectivity(u, 2, 4); !xmath.AlmostEqual(got, 0.2, 1e-12) {
		t.Fatalf("Selectivity = %v, want 0.2", got)
	}
	if got := Selectivity(u, 4, 2); got != 0 {
		t.Fatalf("inverted range Selectivity = %v, want 0", got)
	}
}

func TestNormalQuantileAccuracy(t *testing.T) {
	n := NewNormal(0, 1)
	cases := map[float64]float64{
		0.5:    0,
		0.8413: 0.99982,  // ≈ 1 sigma
		0.0228: -1.99908, // ≈ -2 sigma
	}
	for p, want := range cases {
		if got := n.Quantile(p); math.Abs(got-want) > 1e-3 {
			t.Fatalf("Quantile(%v) = %v, want %v", p, got, want)
		}
	}
	if !math.IsInf(n.Quantile(0), -1) || !math.IsInf(n.Quantile(1), 1) {
		t.Fatal("extreme quantiles should be infinite")
	}
}

func TestNormalRoughnessClosedForms(t *testing.T) {
	n := NewNormal(0, 2)
	// Verify the closed forms against direct numerical integration.
	numFirst := xmath.Simpson(func(x float64) float64 {
		d := xmath.Derivative(n.PDF, x, 1e-5)
		return d * d
	}, -20, 20, 8000)
	if !xmath.AlmostEqual(RoughnessFirst(n), numFirst, 1e-4) {
		t.Fatalf("roughnessFirst closed form %v vs numeric %v", RoughnessFirst(n), numFirst)
	}
	numSecond := xmath.Simpson(func(x float64) float64 {
		d := xmath.SecondDerivative(n.PDF, x, 1e-4)
		return d * d
	}, -20, 20, 8000)
	if !xmath.AlmostEqual(RoughnessSecond(n), numSecond, 1e-3) {
		t.Fatalf("roughnessSecond closed form %v vs numeric %v", RoughnessSecond(n), numSecond)
	}
}

func TestExponentialRoughnessClosedForms(t *testing.T) {
	e := NewExponential(2)
	if got, want := RoughnessFirst(e), 4.0; !xmath.AlmostEqual(got, want, 1e-9) {
		t.Fatalf("exp roughnessFirst = %v, want %v", got, want)
	}
	if got, want := RoughnessSecond(e), 16.0; !xmath.AlmostEqual(got, want, 1e-9) {
		t.Fatalf("exp roughnessSecond = %v, want %v", got, want)
	}
}

func TestUniformRoughnessZero(t *testing.T) {
	u := NewUniform(0, 1)
	if RoughnessFirst(u) != 0 || RoughnessSecond(u) != 0 {
		t.Fatal("uniform roughness functionals must be zero")
	}
}

func TestRoughnessNumericFallback(t *testing.T) {
	// Mixture has no closed form; the generic numeric path must be positive
	// and finite.
	m := NewMixture([]Distribution{NewNormal(0, 1), NewNormal(5, 1)}, []float64{1, 1})
	rf := RoughnessFirst(m)
	if rf <= 0 || math.IsInf(rf, 0) || math.IsNaN(rf) {
		t.Fatalf("mixture RoughnessFirst = %v", rf)
	}
}

func TestTruncatedRenormalises(t *testing.T) {
	tr := NewTruncated(NewNormal(0, 1), -1, 1)
	if got := tr.CDF(1); got != 1 {
		t.Fatalf("CDF at upper bound = %v, want 1", got)
	}
	if got := tr.CDF(-1.0001); got != 0 {
		t.Fatalf("CDF below lower bound = %v, want 0", got)
	}
	// Density must be scaled up relative to the parent.
	parent := NewNormal(0, 1)
	if tr.PDF(0) <= parent.PDF(0) {
		t.Fatal("truncated density should exceed parent density inside interval")
	}
}

func TestTruncatedSampleInBounds(t *testing.T) {
	tr := NewTruncated(NewExponential(1), 0.5, 2)
	r := xrand.New(5)
	for i := 0; i < 20000; i++ {
		x := tr.Sample(r)
		if x < 0.5 || x > 2 {
			t.Fatalf("truncated sample out of bounds: %v", x)
		}
	}
}

func TestTruncatedPanicsOnEmptyMass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-mass truncation should panic")
		}
	}()
	NewTruncated(NewUniform(0, 1), 5, 6)
}

func TestConstructorValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("NewUniform(1,1)", func() { NewUniform(1, 1) })
	mustPanic("NewNormal(0,0)", func() { NewNormal(0, 0) })
	mustPanic("NewExponential(-1)", func() { NewExponential(-1) })
	mustPanic("NewMixture mismatched", func() {
		NewMixture([]Distribution{NewNormal(0, 1)}, []float64{1, 2})
	})
	mustPanic("NewMixture zero weight", func() {
		NewMixture([]Distribution{NewNormal(0, 1)}, []float64{0})
	})
}

// Property: selectivity is additive over adjacent ranges.
func TestQuickSelectivityAdditive(t *testing.T) {
	n := NewNormal(0, 1)
	prop := func(seed uint8) bool {
		a := float64(seed)/32 - 4
		m := a + 0.7
		b := a + 1.9
		whole := Selectivity(n, a, b)
		parts := Selectivity(n, a, m) + Selectivity(n, m, b)
		return xmath.AlmostEqual(whole, parts, 1e-12)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in p.
func TestQuickQuantileMonotone(t *testing.T) {
	e := NewExponential(0.7)
	prop := func(raw uint16) bool {
		p1 := float64(raw%1000) / 1000
		p2 := p1 + 0.0005
		return e.Quantile(p1) <= e.Quantile(p2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
