package dist

import (
	"math"
	"sort"

	"selest/internal/xrand"
)

// Mixture is a finite mixture of component distributions with normalised
// weights. It is the analytic ground truth we use for clustered,
// change-point-rich densities (the regime where the paper's hybrid
// estimator wins).
type Mixture struct {
	comps   []Distribution
	weights []float64 // normalised
	cum     []float64
}

// NewMixture builds a mixture from parallel component and weight slices.
// It panics on mismatched lengths, empty input, or non-positive weights;
// mixtures are constructed from literals in tests and generators, so a
// panic is a programming error, not a runtime condition.
func NewMixture(comps []Distribution, weights []float64) *Mixture {
	if len(comps) == 0 || len(comps) != len(weights) {
		panic("dist: mixture needs equal, non-zero numbers of components and weights")
	}
	total := 0.0
	for _, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic("dist: mixture weights must be positive and finite")
		}
		total += w
	}
	m := &Mixture{
		comps:   append([]Distribution(nil), comps...),
		weights: make([]float64, len(weights)),
		cum:     make([]float64, len(weights)),
	}
	run := 0.0
	for i, w := range weights {
		m.weights[i] = w / total
		run += m.weights[i]
		m.cum[i] = run
	}
	m.cum[len(m.cum)-1] = 1
	return m
}

// PDF returns the weighted component density sum at x.
func (m *Mixture) PDF(x float64) float64 {
	sum := 0.0
	for i, c := range m.comps {
		sum += m.weights[i] * c.PDF(x)
	}
	return sum
}

// CDF returns the weighted component CDF sum at x.
func (m *Mixture) CDF(x float64) float64 {
	sum := 0.0
	for i, c := range m.comps {
		sum += m.weights[i] * c.CDF(x)
	}
	return sum
}

// Quantile inverts the mixture CDF by bisection between the extreme
// component quantiles. Mixture CDFs have no closed-form inverse.
func (m *Mixture) Quantile(p float64) float64 {
	p = clamp01(p)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range m.comps {
		cl := c.Quantile(1e-12)
		ch := c.Quantile(1 - 1e-12)
		if cl < lo {
			lo = cl
		}
		if ch > hi {
			hi = ch
		}
	}
	if p == 0 {
		return lo
	}
	if p == 1 {
		return hi
	}
	for i := 0; i < 200 && hi-lo > 1e-12*math.Max(1, math.Abs(lo)+math.Abs(hi)); i++ {
		mid := 0.5 * (lo + hi)
		if m.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// Support returns the union hull of the component supports.
func (m *Mixture) Support() (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range m.comps {
		cl, ch := c.Support()
		if cl < lo {
			lo = cl
		}
		if ch > hi {
			hi = ch
		}
	}
	return lo, hi
}

// Sample draws a component by weight, then a variate from it.
func (m *Mixture) Sample(r *xrand.RNG) float64 {
	u := r.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.comps) {
		i = len(m.comps) - 1
	}
	return m.comps[i].Sample(r)
}

// Components returns the number of mixture components.
func (m *Mixture) Components() int { return len(m.comps) }
