package dist

import (
	"math"

	"selest/internal/xrand"
)

// Exponential is the Exp(Rate) distribution on [0, ∞). The paper uses it as
// a stand-in for the Zipf distribution: both are highly skewed with mass
// concentrated at the left boundary of the domain.
type Exponential struct {
	Rate float64
}

// NewExponential returns an Exponential with the given rate. It panics on
// rate <= 0.
func NewExponential(rate float64) Exponential {
	if rate <= 0 || math.IsNaN(rate) {
		panic("dist: exponential requires rate > 0")
	}
	return Exponential{Rate: rate}
}

// PDF returns the density at x.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Rate * math.Exp(-e.Rate*x)
}

// CDF returns P(X <= x).
func (e Exponential) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return -math.Expm1(-e.Rate * x)
}

// Quantile returns the p-quantile.
func (e Exponential) Quantile(p float64) float64 {
	p = clamp01(p)
	if p == 1 {
		return math.Inf(1)
	}
	return -math.Log1p(-p) / e.Rate
}

// Support is [0, ∞).
func (e Exponential) Support() (float64, float64) {
	return 0, math.Inf(1)
}

// Sample draws one variate.
func (e Exponential) Sample(r *xrand.RNG) float64 {
	return r.Exponential(e.Rate)
}

// Mean returns the expectation 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Std returns the standard deviation 1/Rate.
func (e Exponential) Std() float64 { return 1 / e.Rate }

// roughnessFirst: f'(x) = −λ²e^{−λx}, so ∫f'² = λ³/2.
func (e Exponential) roughnessFirst() float64 {
	return e.Rate * e.Rate * e.Rate / 2
}

// roughnessSecond: f”(x) = λ³e^{−λx}, so ∫f”² = λ⁵/2.
func (e Exponential) roughnessSecond() float64 {
	r := e.Rate
	return r * r * r * r * r / 2
}
