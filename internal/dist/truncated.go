package dist

import (
	"math"

	"selest/internal/xmath"
	"selest/internal/xrand"
)

// Truncated restricts an inner distribution to [Lo, Hi] and renormalises.
// The paper maps Normal and Exponential records to a finite integer domain
// and discards records that fall outside; truncation is the analytic
// counterpart of that procedure, so ground-truth selectivities stay exact.
type Truncated struct {
	inner  Distribution
	lo, hi float64
	mass   float64 // F_inner(hi) − F_inner(lo)
	cdfLo  float64
}

// NewTruncated truncates inner to [lo, hi]. It panics if the interval is
// empty or carries (numerically) no probability mass.
func NewTruncated(inner Distribution, lo, hi float64) *Truncated {
	if hi <= lo {
		panic("dist: truncation interval must satisfy lo < hi")
	}
	cdfLo := inner.CDF(lo)
	mass := inner.CDF(hi) - cdfLo
	if mass <= 0 || math.IsNaN(mass) {
		panic("dist: truncation interval carries no probability mass")
	}
	return &Truncated{inner: inner, lo: lo, hi: hi, mass: mass, cdfLo: cdfLo}
}

// Inner returns the untruncated distribution.
func (t *Truncated) Inner() Distribution { return t.inner }

// PDF returns the renormalised density at x.
func (t *Truncated) PDF(x float64) float64 {
	if x < t.lo || x > t.hi {
		return 0
	}
	return t.inner.PDF(x) / t.mass
}

// CDF returns P(X <= x) under truncation.
func (t *Truncated) CDF(x float64) float64 {
	switch {
	case x < t.lo:
		return 0
	case x > t.hi:
		return 1
	default:
		return (t.inner.CDF(x) - t.cdfLo) / t.mass
	}
}

// Quantile returns the p-quantile under truncation.
func (t *Truncated) Quantile(p float64) float64 {
	p = clamp01(p)
	x := t.inner.Quantile(t.cdfLo + p*t.mass)
	// Clamp against round-off drifting just outside the interval.
	if x < t.lo {
		return t.lo
	}
	if x > t.hi {
		return t.hi
	}
	return x
}

// Support returns [Lo, Hi].
func (t *Truncated) Support() (float64, float64) { return t.lo, t.hi }

// Sample draws by rejection: the acceptance rate equals the truncated mass,
// which is high for the paper's configurations (the domain covers the bulk
// of the distribution). A pathological configuration falls back to
// inversion after repeated rejection to keep sampling O(1) amortised.
func (t *Truncated) Sample(r *xrand.RNG) float64 {
	for i := 0; i < 64; i++ {
		if x := t.inner.Sample(r); x >= t.lo && x <= t.hi {
			return x
		}
	}
	return t.Quantile(r.Float64())
}

// roughnessFirst scales the inner functional by the renormalisation: for
// g = f/mass on the interval, ∫g'² = ∫f'²_interval / mass². We integrate
// numerically over the interval to honour the truncation bounds.
func (t *Truncated) roughnessFirst() float64 {
	h := (t.hi - t.lo) * 1e-6
	f := func(x float64) float64 {
		df := (t.PDF(x+h) - t.PDF(x-h)) / (2 * h)
		return df * df
	}
	return xmath.Simpson(f, t.lo+2*h, t.hi-2*h, 4096)
}

func (t *Truncated) roughnessSecond() float64 {
	h := (t.hi - t.lo) * 1e-5
	f := func(x float64) float64 {
		d2 := (t.PDF(x+h) - 2*t.PDF(x) + t.PDF(x-h)) / (h * h)
		return d2 * d2
	}
	return xmath.Simpson(f, t.lo+2*h, t.hi-2*h, 4096)
}
