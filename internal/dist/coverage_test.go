package dist

import (
	"math"
	"testing"

	"selest/internal/xmath"
)

// This file targets the edges the main contract suite does not reach:
// accessor methods, out-of-support evaluations, and the truncated
// distribution's numeric roughness functionals.

func TestMeanStdAccessors(t *testing.T) {
	if n := NewNormal(3, 2); n.Mean() != 3 || n.Std() != 2 {
		t.Fatal("normal Mean/Std wrong")
	}
	if e := NewExponential(4); e.Mean() != 0.25 || e.Std() != 0.25 {
		t.Fatal("exponential Mean/Std wrong")
	}
	u := NewUniform(0, 12)
	if u.Mean() != 6 || !xmath.AlmostEqual(u.Std(), 12/math.Sqrt(12), 1e-12) {
		t.Fatal("uniform Mean/Std wrong")
	}
}

func TestOutOfSupportEvaluations(t *testing.T) {
	e := NewExponential(1)
	if e.PDF(-1) != 0 || e.CDF(-1) != 0 {
		t.Fatal("exponential below support should be 0")
	}
	if !math.IsInf(e.Quantile(1), 1) {
		t.Fatal("exponential Quantile(1) should be +Inf")
	}
	if e.Quantile(-0.5) != 0 {
		t.Fatal("clamped quantile below 0 should be the support start")
	}
	u := NewUniform(0, 1)
	if u.PDF(-0.1) != 0 || u.PDF(1.1) != 0 {
		t.Fatal("uniform outside support should be 0")
	}
	if u.CDF(-1) != 0 || u.CDF(2) != 1 {
		t.Fatal("uniform CDF limits wrong")
	}
	tr := NewTruncated(NewNormal(0, 1), -1, 1)
	if tr.PDF(-2) != 0 || tr.PDF(2) != 0 {
		t.Fatal("truncated outside interval should be 0")
	}
}

func TestTruncatedInnerAndQuantileClamp(t *testing.T) {
	inner := NewNormal(0, 1)
	tr := NewTruncated(inner, -1, 1)
	if tr.Inner() != Distribution(inner) {
		t.Fatal("Inner should return the wrapped distribution")
	}
	if q := tr.Quantile(0); q < -1 || q > 1 {
		t.Fatalf("Quantile(0) = %v outside interval", q)
	}
	if q := tr.Quantile(1); q < -1 || q > 1 {
		t.Fatalf("Quantile(1) = %v outside interval", q)
	}
	lo, hi := tr.Support()
	if lo != -1 || hi != 1 {
		t.Fatal("Support wrong")
	}
}

func TestTruncatedRoughnessFunctionals(t *testing.T) {
	// For a wide truncation interval the functionals approach the parent's
	// closed forms.
	tr := NewTruncated(NewNormal(0, 1), -8, 8)
	wantFirst := RoughnessFirst(NewNormal(0, 1))
	if got := RoughnessFirst(tr); !xmath.AlmostEqual(got, wantFirst, 1e-2) {
		t.Fatalf("truncated roughnessFirst %v, parent %v", got, wantFirst)
	}
	wantSecond := RoughnessSecond(NewNormal(0, 1))
	if got := RoughnessSecond(tr); !xmath.AlmostEqual(got, wantSecond, 1e-2) {
		t.Fatalf("truncated roughnessSecond %v, parent %v", got, wantSecond)
	}
}

func TestRoughnessSecondNumericPath(t *testing.T) {
	// Mixture exercises the generic numeric RoughnessSecond (no closed
	// form); compare against direct integration.
	m := NewMixture([]Distribution{NewNormal(-2, 1), NewNormal(2, 1)}, []float64{1, 1})
	got := RoughnessSecond(m)
	want := xmath.Simpson(func(x float64) float64 {
		d := xmath.SecondDerivative(m.PDF, x, 1e-3)
		return d * d
	}, -10, 10, 8000)
	if !xmath.AlmostEqual(got, want, 5e-2) {
		t.Fatalf("mixture RoughnessSecond %v, numeric %v", got, want)
	}
}

func TestMixtureAccessorsAndEdges(t *testing.T) {
	m := NewMixture([]Distribution{NewUniform(0, 1), NewUniform(10, 11)}, []float64{1, 3})
	if m.Components() != 2 {
		t.Fatal("Components wrong")
	}
	// Quantile extremes hit the support hull.
	if q := m.Quantile(0); q > 0.01 {
		t.Fatalf("Quantile(0) = %v", q)
	}
	if q := m.Quantile(1); q < 10.99 {
		t.Fatalf("Quantile(1) = %v", q)
	}
	lo, hi := m.Support()
	if lo != 0 || hi != 11 {
		t.Fatalf("Support = [%v, %v]", lo, hi)
	}
	// Weighted CDF at the gap: first component carries 1/4 of the mass.
	if got := m.CDF(5); !xmath.AlmostEqual(got, 0.25, 1e-12) {
		t.Fatalf("CDF(5) = %v", got)
	}
}
