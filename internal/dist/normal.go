package dist

import (
	"math"

	"selest/internal/xrand"
)

// Normal is the Gaussian distribution N(Mu, Sigma²).
type Normal struct {
	Mu, Sigma float64
}

// NewNormal returns a Normal with the given mean and standard deviation.
// It panics on sigma <= 0.
func NewNormal(mu, sigma float64) Normal {
	if sigma <= 0 || math.IsNaN(mu) || math.IsNaN(sigma) {
		panic("dist: normal requires sigma > 0")
	}
	return Normal{Mu: mu, Sigma: sigma}
}

const invSqrt2Pi = 0.3989422804014327 // 1/√(2π)

// PDF returns the density at x.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return invSqrt2Pi / n.Sigma * math.Exp(-0.5*z*z)
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Quantile returns the p-quantile using the Acklam rational approximation
// refined by one Halley step, accurate to ~1e-15 over (0,1).
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*stdNormalQuantile(p)
}

// Support is the whole real line.
func (n Normal) Support() (float64, float64) {
	return math.Inf(-1), math.Inf(1)
}

// Sample draws one variate.
func (n Normal) Sample(r *xrand.RNG) float64 {
	return r.NormalMeanStd(n.Mu, n.Sigma)
}

// Mean returns the expectation.
func (n Normal) Mean() float64 { return n.Mu }

// Std returns the standard deviation.
func (n Normal) Std() float64 { return n.Sigma }

// roughnessFirst: ∫f'² = 1/(4√π σ³) for a Gaussian.
func (n Normal) roughnessFirst() float64 {
	return 1 / (4 * math.SqrtPi * n.Sigma * n.Sigma * n.Sigma)
}

// roughnessSecond: ∫f”² = 3/(8√π σ⁵) for a Gaussian. This constant is
// exactly what the paper's normal scale rules (eqs. 8 and §4.2) plug into
// the optimal-h formulas.
func (n Normal) roughnessSecond() float64 {
	s5 := n.Sigma * n.Sigma * n.Sigma * n.Sigma * n.Sigma
	return 3 / (8 * math.SqrtPi * s5)
}

// stdNormalQuantile inverts the standard normal CDF.
func stdNormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	}

	// Acklam's rational approximation.
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-2.400758277161838e+00)*q-2.549732539343734e+00)*q+4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((-3.969683028665376e+01*r+2.209460984245205e+02)*r-2.759285104469687e+02)*r+1.383577518672690e+02)*r-3.066479806614716e+01)*r + 2.506628277459239e+00) * q /
			(((((-5.447609879822406e+01*r+1.615858368580409e+02)*r-1.556989798598866e+02)*r+6.680131188771972e+01)*r-1.328068155288572e+01)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-2.400758277161838e+00)*q-2.549732539343734e+00)*q+4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	}

	// One Halley refinement step drives the error to machine precision.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}
