package selest_test

import (
	"testing"

	"selest"
	"selest/internal/kde"
)

// The telemetry overhead contract: an instrumented kernel query must stay
// within a few percent of the bare query. The three sub-benchmarks are
// the committed evidence (make bench writes them to BENCH_telemetry.json):
//
//	bare         telemetry disabled — the pre-telemetry hot path
//	instrumented telemetry enabled  — the in-estimator hooks (default)
//	wrapped      telemetry enabled + the Instrument wrapper (per-query
//	             counter and latency histogram) on top
func BenchmarkTelemetryKernelQuery(b *testing.B) {
	est, err := kde.New(benchSamples(2000), kde.Config{Bandwidth: 1e4, Boundary: kde.BoundaryKernels, DomainLo: 0, DomainHi: 1e6})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("bare", func(b *testing.B) {
		selest.DisableTelemetry()
		defer selest.EnableTelemetry()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = est.Selectivity(4e5, 4.1e5)
		}
	})

	b.Run("instrumented", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = est.Selectivity(4e5, 4.1e5)
		}
	})

	b.Run("wrapped", func(b *testing.B) {
		wrapped := selest.Instrument(est)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = wrapped.Selectivity(4e5, 4.1e5)
		}
	})
}
