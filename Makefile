# Development and CI entry points. `make ci` is the gate: vet (and
# staticcheck when installed), the full test suite, and the race detector
# over the concurrency-sensitive packages (online serving through refit
# failures, robust ladder, telemetry registry).

GO ?= go

.PHONY: build test vet staticcheck race race-online fuzz bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The online refit-failure suite is the race-detector hot spot: readers
# serve while writers fail, panic, and degrade the builder ladder.
race-online:
	$(GO) test -race -v -run 'Refit|Panic|Degrad|Drift|Concurrent' ./internal/online/

# Short fuzz pass over the robust ladder's finite-[0,1] invariant.
fuzz:
	$(GO) test -fuzz FuzzBuild -fuzztime 30s ./internal/robust/

# staticcheck is optional tooling: run it when installed, skip quietly
# when not, so ci works on a bare Go toolchain.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# The instrumented-vs-bare benchmark pairs: the committed evidence that
# telemetry stays within the overhead budget. Writes BENCH_telemetry.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetry' -benchmem ./internal/telemetry/ . \
		| tee /dev/stderr | sh scripts/bench2json.sh > BENCH_telemetry.json

ci: vet staticcheck test race
