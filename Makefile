# Development and CI entry points. `make ci` is the gate: vet (and
# staticcheck when installed), the full test suite, and the race detector
# over the concurrency-sensitive packages (online serving through refit
# failures, robust ladder, telemetry registry).

GO ?= go

.PHONY: build test vet staticcheck govulncheck race race-online race-serve race-service race-wire race-cluster race-experiments race-fit race-refit fuzz fuzz-query fuzz-server fuzz-wire bench bench-query bench-fit bench-fit-quick benchstat-fit bench-hotpath bench-hotpath-quick benchstat-hotpath bench-refit bench-refit-quick benchstat-refit bench-serve bench-serve-quick benchstat-serve bench-service bench-service-quick bench-cluster bench-cluster-quick ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The online refit-failure suite is the race-detector hot spot: readers
# serve while writers fail, panic, and degrade the builder ladder.
race-online:
	$(GO) test -race -v -run 'Refit|Panic|Degrad|Drift|Concurrent' ./internal/online/

# The serving-engine suite under the race detector: snapshot/locked
# bit-equivalence, torn-pair detection, single-flight coalescing, the
# degradation soak, sharded-reservoir concurrency, and catalog snapshot
# churn.
race-serve:
	$(GO) test -race -run 'Snapshot|Torn|Coalesce|Soak|Sharded|Churn|SelectivityOK|InsertBatch' \
		./internal/online/ ./internal/sample/ ./internal/catalog/

# The service chaos suite under the race detector: refit-panic soak with
# rung descent and recovery, kill-and-restart bit-identical snapshots,
# shutdown under load dropping nothing, slow-tenant quota isolation, and
# torn-snapshot cold starts.
race-service:
	$(GO) test -race ./internal/server/

# The wire-transport suites under the race detector: the binary listener
# through the refit-panic soak, shutdown-conservation, slow-tenant
# isolation, panic containment, and protocol garbage — plus the client
# package's pipelining/redial/health-check concurrency.
race-wire:
	$(GO) test -race -run 'TestWireChaos|TestWire' ./internal/server/
	$(GO) test -race ./client/

# The cluster suites under the race detector: rendezvous-ring movement
# and stability properties, tenant sharding against server-side ground
# truth, read failover and write fan-out past a dead replica, health
# ejection/re-admission, snapshot shipping byte-identity and torn
# transfers, and the kill/restart chaos run with zero visible errors.
race-cluster:
	$(GO) test -race ./internal/cluster/
	$(GO) test -race -run 'TestClientCluster|TestClientFetchSnapshot' ./client/
	$(GO) test -race -run 'TestSnapshotShip' ./internal/server/

# The parallel experiment harness under the race detector: bounded worker
# pool, once-per-key Env cache, and the parallel-equals-sequential report
# property.
race-experiments:
	$(GO) test -race -run 'Parallel|ForEach|RunDrivers|EnvConcurrent' ./internal/experiments/

# Short fuzz pass over the robust ladder's finite-[0,1] invariant.
fuzz:
	$(GO) test -fuzz FuzzBuild -fuzztime 30s ./internal/robust/

# Short fuzz pass over the prefix-moment query engine: the O(log n)
# closed form must match the Θ(n) reference within 1e-9 on fuzzer-chosen
# sample shapes and query bits.
fuzz-query:
	$(GO) test -run '^$$' -fuzz FuzzMomentMatchesLinear -fuzztime 30s ./internal/kde/

# Short fuzz pass over the service's HTTP request decoders: malformed
# JSON, NaN/Inf spellings, inverted ranges — always a typed 4xx, never a
# panic.
fuzz-server:
	$(GO) test -run '^$$' -fuzz FuzzHTTPDecoders -fuzztime 30s ./internal/server/

# Short fuzz pass over the selestwire codec: arbitrary bytes through
# ReadFrame never panic or over-allocate, and every frame that round-trips
# through AppendFrame decodes back bit-identically.
fuzz-wire:
	$(GO) test -run '^$$' -fuzz FuzzWireCodec -fuzztime 30s ./internal/wire/

# staticcheck is optional tooling: run it when installed, skip quietly
# when not, so ci works on a bare Go toolchain.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# The instrumented-vs-bare benchmark pairs: the committed evidence that
# telemetry stays within the overhead budget. Writes BENCH_telemetry.json.
bench: bench-query bench-fit
	$(GO) test -run '^$$' -bench 'BenchmarkTelemetry' -benchmem ./internal/telemetry/ . \
		| tee /dev/stderr | sh scripts/bench2json.sh > BENCH_telemetry.json

# The query-engine ladder: Θ(n) linear, O(log n + k) edge scan, O(log n)
# prefix moments, and the shared batch sweep, at n up to 1e6 with the DPI
# bandwidth. Writes BENCH_query.json — the committed evidence for the
# moment path's speedup and 0 allocs/query.
bench-query:
	$(GO) test -run '^$$' -bench 'BenchmarkQuery' -benchmem ./internal/kde/ \
		| tee /dev/stderr | sh scripts/bench2json.sh > BENCH_query.json

# The fit-path engine pairs: DPI fit, LSCV, oracle search, and the hybrid
# build, each engine-vs-seed at n up to 1e6. Writes the raw `go test`
# output to BENCH_fit.txt (the committed benchstat baseline) and the
# parsed records to BENCH_fit.json — the committed evidence for the
# shared-context + grid-sweep speedups.
bench-fit:
	$(GO) test -run '^$$' -bench 'BenchmarkFit' -benchmem -timeout 60m \
		./internal/fsort/ ./internal/kde/ ./internal/bandwidth/ ./internal/hybrid/ \
		| tee /dev/stderr | tee BENCH_fit.txt | sh scripts/bench2json.sh > BENCH_fit.json

# A fast single-iteration sweep of the same benchmarks: smoke coverage
# that every BenchmarkFit* still runs, cheap enough for ci.
bench-fit-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkFit' -benchtime 1x -timeout 10m \
		./internal/fsort/ ./internal/kde/ ./internal/bandwidth/ ./internal/hybrid/ > /dev/null

# benchstat is optional tooling: when installed, diff a fresh quick run
# of the fit benches against the committed BENCH_fit.txt baseline; skip
# quietly on a bare Go toolchain.
benchstat-fit:
	@if command -v benchstat >/dev/null 2>&1 && [ -f BENCH_fit.txt ]; then \
		$(GO) test -run '^$$' -bench 'BenchmarkFit' -benchmem -benchtime 1x -timeout 10m \
			./internal/fsort/ ./internal/kde/ ./internal/bandwidth/ ./internal/hybrid/ > BENCH_fit.head.txt; \
		benchstat BENCH_fit.txt BENCH_fit.head.txt || true; \
		rm -f BENCH_fit.head.txt; \
	else \
		echo "benchstat not installed or no BENCH_fit.txt baseline; skipping"; \
	fi

# The request-path hot-path ladder: the frame codec floor (encode,
# decode, zero-copy views) and the server's inline fast path measured in
# isolation and end-to-end over pipelined TCP. The allocs/op column is
# the tentpole contract — every row must stay 0. Writes the raw output
# to BENCH_hotpath.txt (the committed benchstat baseline) and the parsed
# records to BENCH_hotpath.json.
bench-hotpath:
	$(GO) test -run '^$$' -bench 'BenchmarkHotpath' -benchmem -timeout 30m \
		./internal/wire/ ./internal/server/ \
		| tee /dev/stderr | tee BENCH_hotpath.txt | sh scripts/bench2json.sh > BENCH_hotpath.json

# A fast sweep of the same benchmarks: smoke coverage that every
# BenchmarkHotpath* still runs (and still reports 0 allocs under the
# test pins), cheap enough for ci.
bench-hotpath-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkHotpath' -benchtime 100x -timeout 10m \
		./internal/wire/ ./internal/server/ > /dev/null

# benchstat is optional tooling: when installed, diff a fresh quick run
# of the hot-path benches against the committed BENCH_hotpath.txt
# baseline; skip quietly on a bare Go toolchain.
benchstat-hotpath:
	@if command -v benchstat >/dev/null 2>&1 && [ -f BENCH_hotpath.txt ]; then \
		$(GO) test -run '^$$' -bench 'BenchmarkHotpath' -benchmem -benchtime 100x -timeout 10m \
			./internal/wire/ ./internal/server/ > BENCH_hotpath.head.txt; \
		benchstat BENCH_hotpath.txt BENCH_hotpath.head.txt || true; \
		rm -f BENCH_hotpath.head.txt; \
	else \
		echo "benchstat not installed or no BENCH_hotpath.txt baseline; skipping"; \
	fi

# The closed-form refit ladder: end-to-end online refit per bandwidth
# rule at n = 1e4/1e5/1e6, the selector stage alone on a prebuilt
# context, the copy+sort+index floor, and the 0-alloc query pin. Writes
# the raw output to BENCH_refit.txt (the committed benchstat baseline)
# and the parsed records to BENCH_refit.json — the committed evidence
# for the closed-form bandwidth engine.
bench-refit:
	$(GO) test -run '^$$' -bench 'BenchmarkRefit' -benchmem -timeout 60m \
		./internal/online/ \
		| tee /dev/stderr | tee BENCH_refit.txt | sh scripts/bench2json.sh > BENCH_refit.json

# A fast single-iteration sweep of the same benchmarks: smoke coverage
# that every BenchmarkRefit* still runs, cheap enough for ci.
bench-refit-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkRefit' -benchtime 1x -timeout 10m \
		./internal/online/ > /dev/null

# benchstat is optional tooling: when installed, diff a fresh quick run
# of the refit benches against the committed BENCH_refit.txt baseline;
# skip quietly on a bare Go toolchain.
benchstat-refit:
	@if command -v benchstat >/dev/null 2>&1 && [ -f BENCH_refit.txt ]; then \
		$(GO) test -run '^$$' -bench 'BenchmarkRefit' -benchmem -benchtime 1x -timeout 10m \
			./internal/online/ > BENCH_refit.head.txt; \
		benchstat BENCH_refit.txt BENCH_refit.head.txt || true; \
		rm -f BENCH_refit.head.txt; \
	else \
		echo "benchstat not installed or no BENCH_refit.txt baseline; skipping"; \
	fi

# The serving-engine pairs: snapshot engine vs the preserved RWMutex
# baseline for steady-state parallel queries, query latency during an
# n=1e6 DPI refit (the p50/p99/max stall numbers), sharded vs locked
# ingest, and the mixed workload. -cpu 1,8 sweeps GOMAXPROCS so the
# contention collapse is visible next to the uncontended cost. Writes
# the raw output to BENCH_serve.txt (the committed benchstat baseline)
# and the parsed records to BENCH_serve.json.
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServe' -benchmem -cpu 1,8 -timeout 60m \
		./internal/online/ \
		| tee /dev/stderr | tee BENCH_serve.txt | sh scripts/bench2json.sh > BENCH_serve.json

# A fast sweep of the same benchmarks: smoke coverage that every
# BenchmarkServe* still runs, cheap enough for ci. 200 iterations keeps
# the during-refit pair's 1e6-insert prefill from dominating while still
# exercising the background-refit loop at least once.
bench-serve-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkServe' -benchtime 200x -cpu 8 -timeout 10m \
		./internal/online/ > /dev/null

# benchstat is optional tooling: when installed, diff a fresh quick run
# of the serve benches against the committed BENCH_serve.txt baseline;
# skip quietly on a bare Go toolchain.
benchstat-serve:
	@if command -v benchstat >/dev/null 2>&1 && [ -f BENCH_serve.txt ]; then \
		$(GO) test -run '^$$' -bench 'BenchmarkServe' -benchmem -benchtime 200x -cpu 1,8 -timeout 10m \
			./internal/online/ > BENCH_serve.head.txt; \
		benchstat BENCH_serve.txt BENCH_serve.head.txt || true; \
		rm -f BENCH_serve.head.txt; \
	else \
		echo "benchstat not installed or no BENCH_serve.txt baseline; skipping"; \
	fi

# The end-to-end service benchmark: boot selestd, drive mixed read/ingest
# load with selestload, record p50/p99/p999 + retry/shed counts, shut
# down gracefully. Writes BENCH_service.json — the committed evidence for
# the service chapter of the README.
bench-service:
	sh scripts/bench_service.sh

# A short smoke run of the same harness: proves the daemon boots, serves
# under load, and drains cleanly, cheap enough for ci. Output discarded.
bench-service-quick:
	DURATION=2s WORKERS=8 SEED_VALUES=512 OUT=/dev/null sh scripts/bench_service.sh

# The horizontal-scaling benchmark: fleets of 1/2/4 capacity-pinned
# replicas driven through the cluster client's rendezvous routing, plus
# the `-join` snapshot-shipping smoke. Writes BENCH_cluster.json and
# BENCH_cluster.txt — the committed evidence for DESIGN.md §15.
bench-cluster:
	sh scripts/bench_cluster.sh

# A short smoke run of the same harness (1 and 2 replicas, short
# duration, output discarded): proves fleet boot, routed load, the
# failure gate, and the join path, cheap enough for ci.
bench-cluster-quick:
	DURATION=2s TENANTS=16 SEED_VALUES=256 SET="1 2" OUT=/dev/null TXT=- \
		sh scripts/bench_cluster.sh

# govulncheck is optional tooling: scan when installed, skip quietly on
# a bare Go toolchain so ci never needs network access.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

# The fit-path determinism pins under the race detector: parallel LSCV /
# oracle grids and the hybrid bin fill must be bit-identical to their
# sequential scans at every worker count.
race-fit:
	$(GO) test -race -run 'Workers|FitContext|DensityGrid|MatchesSeed' \
		./internal/fsort/ ./internal/kde/ ./internal/bandwidth/ ./internal/hybrid/

# The closed-form refit determinism pin under the race detector: online
# refits under the beta-closed-form rule must be bit-identical across
# shard counts and concurrent insert interleavings.
race-refit:
	$(GO) test -race -run 'ClosedForm' \
		./internal/online/ ./internal/bandwidth/

ci: vet staticcheck govulncheck test race race-experiments race-fit race-refit race-serve race-service race-wire race-cluster bench-fit-quick benchstat-fit bench-refit-quick benchstat-refit bench-hotpath-quick benchstat-hotpath bench-serve-quick benchstat-serve bench-service-quick bench-cluster-quick
