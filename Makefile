# Development and CI entry points. `make ci` is the gate: vet, the full
# test suite, and the race detector over the concurrency-sensitive
# packages (online serving through refit failures, robust ladder).

GO ?= go

.PHONY: build test vet race race-online fuzz ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The online refit-failure suite is the race-detector hot spot: readers
# serve while writers fail, panic, and degrade the builder ladder.
race-online:
	$(GO) test -race -v -run 'Refit|Panic|Degrad|Drift|Concurrent' ./internal/online/

# Short fuzz pass over the robust ladder's finite-[0,1] invariant.
fuzz:
	$(GO) test -fuzz FuzzBuild -fuzztime 30s ./internal/robust/

ci: vet test race
