package selest

import (
	"selest/internal/core"
	"selest/internal/kde"
)

// The typed build errors. Build and BuildRobust wrap these with %w, so
// callers branch with errors.Is instead of matching message strings:
//
//	if _, err := selest.Build(nil, opts); errors.Is(err, selest.ErrEmptySample) { ... }
var (
	// ErrEmptySample reports a sample set with nothing to estimate from:
	// empty, or (through the robust ladder) containing no finite value.
	ErrEmptySample = core.ErrEmptySample
	// ErrInvalidDomain reports a domain that is not a proper finite
	// interval (DomainHi must exceed DomainLo).
	ErrInvalidDomain = core.ErrInvalidDomain
	// ErrBadOption reports an Options field outside its valid range: an
	// unknown method or rule, a negative count, a non-finite bandwidth,
	// or a rule/method combination that cannot work.
	ErrBadOption = core.ErrBadOption
)

// ParseMethod resolves a method name as written on a command line or in a
// config file: case-insensitive, surrounding space ignored. The error for
// an unknown name lists every valid method and wraps ErrBadOption.
func ParseMethod(s string) (Method, error) { return core.ParseMethod(s) }

// ParseBandwidthRule resolves a smoothing-rule name the same way
// ParseMethod resolves methods.
func ParseBandwidthRule(s string) (BandwidthRule, error) { return core.ParseBandwidthRule(s) }

// ParseBoundaryMode resolves a kernel boundary-treatment name: "none",
// "reflect", or "kernels" (also accepted as "boundary-kernels").
func ParseBoundaryMode(s string) (BoundaryMode, error) { return kde.ParseBoundaryMode(s) }

// BandwidthRules lists every smoothing rule Build accepts.
func BandwidthRules() []BandwidthRule { return core.BandwidthRules() }
